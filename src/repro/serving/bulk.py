"""Bulk offline scoring: whole procedures, one fused pass per stage.

The serving stack's second workload.  The online half
(:class:`~repro.serving.service.MonitorService`) advances live sessions
one frame per tick; the eval half — the fault-injection campaign and
every table/figure experiment — replays *recorded* procedures, where all
frames exist up front and tick-by-tick causality buys nothing.
:class:`BulkScorer` exploits that: it materialises every sliding window
of a trajectory as a zero-copy strided view
(:func:`~repro.kinematics.windows.sliding_windows_view`) and runs each
pipeline stage **once** over the full ``(n_windows, window, features)``
batch through the :class:`~repro.nn.backends.InferenceBackend` bulk
entry points (``forward_bulk`` / ``score_bulk``) — one GEMM per Dense
stage, LSTM steps batched across all windows, vectorised conv — then
vectorises the post-processing (per-gesture classifier dispatch as a
grouped gather/scatter, forward-fill as one running maximum).

Correctness contract (pinned by ``tests/property/test_bulk_parity.py``):

- ``backend="reference"`` — **bit-identical** to the looped
  :meth:`~repro.core.pipeline.SafetyMonitor.process` (and therefore to
  ``stream()`` and the serving engines wherever those agree with
  ``process()``): the reference backend executes the identical float
  operation sequence, and batch-invariant inference makes the fused
  batch indistinguishable from any other batching.
- ``backend="compiled"`` / ``"compiled-f32"`` — gestures and flags
  exact in practice (discrete outputs), scores within ``atol=1e-6``
  (``~1e-3`` relative for f32): the compiled plan trades the bit-exact
  einsum contraction for BLAS throughput.

Timing contract: per-window latency means are meaningless for one fused
batch, so the returned :class:`~repro.core.pipeline.MonitorOutput`
carries *amortised* ``gesture_ms``/``error_ms`` (stage wall-clock over
window count) and puts the authoritative bulk numbers in ``metadata``:
``wall_ms`` (end-to-end) and ``bulk_fps`` (frames per second through
the fused pipeline).  See the class docstring.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.pipeline import MonitorOutput, SafetyMonitor
from ..errors import NotFittedError
from ..gestures.vocabulary import Gesture
from ..kinematics.trajectory import Trajectory
from ..kinematics.windows import sliding_windows_view
from ..nn.backends import (
    DEFAULT_BACKEND,
    InferenceBackend,
    make_backend,
    validate_backend_name,
)

__all__ = ["BulkScorer", "score_procedure", "score_procedures"]


class BulkScorer:
    """Score whole recorded procedures in one batched pass per stage.

    Parameters
    ----------
    monitor:
        The trained two-stage :class:`SafetyMonitor` to serve.
    backend:
        Inference backend name (:data:`repro.nn.backends.BACKEND_NAMES`).
        ``"reference"`` (default) keeps the bit-exact parity contract
        with the looped ``process()``; ``"compiled"``/``"compiled-f32"``
        run the folded BLAS plans, sized to the procedure via the
        backends' grow-and-cache bulk twins.

    One backend per trained model is compiled on first use and cached by
    model identity (same retrain contract as
    :class:`~repro.serving.service.MonitorService`: ``fit()`` rebinds
    ``.model``, which invalidates the cache), so a scorer amortises
    compilation across a whole evaluation sweep — score one fold's 39
    test procedures, the campaign's hundreds of injections, all against
    the same handful of plans.

    Output contract
    ---------------
    :meth:`score` returns a :class:`MonitorOutput` whose ``gestures`` /
    ``unsafe_scores`` / ``unsafe_flags`` follow the ``process()``
    contract exactly.  ``gesture_ms``/``error_ms`` are **amortised**
    per-window stage latencies (stage wall-clock divided by window
    count — the fused batch has no per-window latency to report), and
    ``metadata`` carries the bulk-mode fields: ``engine="bulk"``,
    ``backend``, ``n_windows`` (error-stage windows scored),
    ``wall_ms`` (end-to-end wall-clock of the whole pass) and
    ``bulk_fps`` (trajectory frames per second through the pipeline,
    the number the benchmark and CI gate track).
    """

    def __init__(
        self, monitor: SafetyMonitor, backend: str = DEFAULT_BACKEND
    ) -> None:
        self.monitor = monitor
        self.backend = validate_backend_name(backend)
        self._gesture_backend: tuple[object, InferenceBackend] | None = None
        self._error_backends: dict[Gesture, tuple[object, InferenceBackend]] = {}

    # ------------------------------------------------------------------
    # Backend cache (model identity = retrain signal)
    # ------------------------------------------------------------------
    def _gesture_stage(self) -> InferenceBackend:
        classifier = self.monitor.gesture_classifier
        classifier._check_fitted()
        model = classifier.model
        assert model is not None
        if self._gesture_backend is None or self._gesture_backend[0] is not model:
            self._gesture_backend = (
                model,
                make_backend(self.backend, classifier.scaler, model),
            )
        return self._gesture_backend[1]

    def _error_stage(self, gesture: Gesture) -> InferenceBackend | None:
        """The gesture's error backend, or ``None`` for constant-safe."""
        clf = self.monitor.library.classifiers.get(gesture)
        if clf is None:
            self._error_backends.pop(gesture, None)
            return None
        clf._check_fitted()
        assert clf.model is not None
        cached = self._error_backends.get(gesture)
        if cached is None or cached[0] is not clf.model:
            cached = (clf.model, make_backend(self.backend, clf.scaler, clf.model))
            self._error_backends[gesture] = cached
        return cached[1]

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _gesture_frames(
        self, trajectory: Trajectory
    ) -> tuple[np.ndarray, float]:
        """Per-frame gesture numbers via one fused gesture-stage pass.

        Mirrors :meth:`GestureClassifier.predict_frames` operation for
        operation (same windows, same fill), with the model invocation
        routed through the backend's ``score_bulk``.
        """
        classifier = self.monitor.gesture_classifier
        backend = self._gesture_stage()
        cfg = classifier.config
        frames = trajectory.frames
        if cfg.feature_indices is not None:
            frames = frames[:, cfg.feature_indices]
        windows, ends = sliding_windows_view(frames, cfg.window)
        if ends.size == 0:
            return np.zeros(trajectory.n_frames, dtype=int), 0.0
        start_time = time.perf_counter()
        class_idx = backend.score_bulk(windows)
        elapsed_ms = 1000.0 * (time.perf_counter() - start_time)
        numbers = np.asarray(class_idx, dtype=int) + 1
        lengths = np.diff(np.append(ends, trajectory.n_frames))
        out = np.empty(trajectory.n_frames, dtype=int)
        out[: ends[0]] = numbers[0]
        out[ends[0] :] = np.repeat(numbers, lengths)
        return out, elapsed_ms

    def score(
        self, trajectory: Trajectory, use_true_gestures: bool = False
    ) -> MonitorOutput:
        """Run the full pipeline over one procedure, fully batched.

        Drop-in equivalent of
        :meth:`SafetyMonitor.process(trajectory, use_true_gestures)
        <repro.core.pipeline.SafetyMonitor.process>` — see the class
        docstring for the parity and timing contracts.
        """
        wall_start = time.perf_counter()
        gesture_wall_ms = 0.0
        n_gesture_windows = 0
        if use_true_gestures:
            if trajectory.gestures is None:
                raise NotFittedError("perfect-boundary mode needs gesture labels")
            gestures = trajectory.gestures.copy()
        else:
            gestures, gesture_wall_ms = self._gesture_frames(trajectory)
            n_gesture_windows = self.monitor.gesture_classifier.config.window.n_windows(
                trajectory.n_frames
            )

        cfg = self.monitor.config.error_window
        n_frames = trajectory.n_frames
        windows, ends = sliding_windows_view(trajectory.frames, cfg)
        scores = np.zeros(n_frames)

        # The grouped gather/scatter: windows are grouped by the gesture
        # active at their final frame, each group scored by its
        # classifier in one fused pass, probabilities scattered back to
        # the group's end frames.
        window_gestures = gestures[ends]
        if not use_true_gestures:
            # Same causality clamp as process(): error windows ending in
            # the gesture stage's warm-up see no context yet.
            context_start = self.monitor.gesture_classifier.config.window.window - 1
            window_gestures = np.where(ends >= context_start, window_gestures, 0)
        scored = np.zeros(n_frames, dtype=bool)
        error_wall_ms = 0.0
        for gesture_number in np.unique(window_gestures):
            mask = window_gestures == gesture_number
            scored[ends[mask]] = True  # a constant classifier scores 0 (safe)
            if gesture_number < 1:
                continue  # no gesture context yet (shorter than one window)
            backend = self._error_stage(Gesture(int(gesture_number)))
            if backend is None:
                continue
            stage_start = time.perf_counter()
            probs = backend.forward_bulk(windows[mask]).reshape(-1)
            error_wall_ms += 1000.0 * (time.perf_counter() - stage_start)
            scores[ends[mask]] = probs

        # Forward-fill: identical running-maximum source index as
        # process(), one vectorised pass for the whole trajectory.
        source = np.maximum.accumulate(
            np.where(scored, np.arange(n_frames), -1)
        )
        scores = np.where(source >= 0, scores[np.maximum(source, 0)], 0.0)
        flags = (scores >= self.monitor.threshold).astype(int)

        wall_ms = 1000.0 * (time.perf_counter() - wall_start)
        n_windows = int(ends.size)
        return MonitorOutput(
            gestures=gestures,
            unsafe_scores=scores,
            unsafe_flags=flags,
            gesture_ms=(
                gesture_wall_ms / n_gesture_windows if n_gesture_windows else 0.0
            ),
            error_ms=error_wall_ms / n_windows if n_windows else 0.0,
            metadata={
                "use_true_gestures": use_true_gestures,
                "engine": "bulk",
                "backend": self.backend,
                "n_windows": n_windows,
                "wall_ms": wall_ms,
                "bulk_fps": n_frames / (wall_ms / 1000.0) if wall_ms > 0 else 0.0,
            },
        )

    def score_many(
        self,
        trajectories: list[Trajectory],
        use_true_gestures: bool = False,
    ) -> list[MonitorOutput]:
        """Score a list of procedures, reusing the compiled plans.

        The convenience loop for dataset sweeps: every trajectory is
        scored by :meth:`score` against the same cached backends, so
        plan compilation is paid once per (model, backend) pair for the
        whole sweep.
        """
        return [self.score(t, use_true_gestures) for t in trajectories]


def score_procedure(
    monitor: SafetyMonitor,
    trajectory: Trajectory,
    use_true_gestures: bool = False,
    backend: str = DEFAULT_BACKEND,
) -> MonitorOutput:
    """One-shot bulk scoring of a single procedure.

    Builds a throwaway :class:`BulkScorer`; prefer constructing one
    scorer (or :func:`score_procedures`) when scoring many procedures,
    so compiled plans are reused.
    """
    return BulkScorer(monitor, backend=backend).score(trajectory, use_true_gestures)


def score_procedures(
    monitor: SafetyMonitor,
    trajectories: list[Trajectory],
    use_true_gestures: bool = False,
    backend: str = DEFAULT_BACKEND,
) -> list[MonitorOutput]:
    """Bulk-score a list of procedures with one shared scorer."""
    return BulkScorer(monitor, backend=backend).score_many(
        trajectories, use_true_gestures
    )
