"""Paper Figure 9: best/median/worst ROC curves per setup.

Computes a per-demonstration ROC for the context-specific pipeline and
the non-context-specific baseline over the held-out demonstrations and
reports the best, median and worst curves of each setup — the paper's
visual evidence that the context-specific monitor dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eval.reports import format_table
from ..eval.roc import auc_score, roc_curve
from .common import ExperimentScale, get_scale, train_suturing_fold
from .table8 import _baseline_output


@dataclass
class RocSummary:
    """One demonstration's ROC under one setup."""

    setup: str
    demo_index: int
    auc: float
    fpr: np.ndarray
    tpr: np.ndarray


@dataclass
class Figure9Result:
    """Best/median/worst ROC per setup."""

    curves: dict[str, list[RocSummary]]  # setup -> [best, median, worst]

    def aucs(self, setup: str) -> list[float]:
        """The three reported AUCs of a setup (best, median, worst)."""
        return [c.auc for c in self.curves[setup]]


def _pick_best_median_worst(summaries: list[RocSummary]) -> list[RocSummary]:
    ranked = sorted(summaries, key=lambda s: s.auc, reverse=True)
    return [ranked[0], ranked[len(ranked) // 2], ranked[-1]]


def run(
    scale: "str | ExperimentScale" = "fast",
    seed: int = 0,
    held_out_trial: int = 2,
) -> Figure9Result:
    """Train one Suturing fold and collect per-demo ROC curves."""
    preset = get_scale(scale)
    components = train_suturing_fold(preset, held_out_trial, seed=seed)
    monitor = components.monitor()

    context: list[RocSummary] = []
    baseline: list[RocSummary] = []
    for i, demo in enumerate(components.test.demonstrations):
        trajectory = demo.trajectory
        assert trajectory.unsafe is not None
        if len(np.unique(trajectory.unsafe)) < 2:
            continue
        out_ctx = monitor.process(trajectory, bulk=True)
        fpr, tpr, _ = roc_curve(trajectory.unsafe, out_ctx.unsafe_scores)
        context.append(
            RocSummary(
                "context-specific",
                i,
                auc_score(trajectory.unsafe, out_ctx.unsafe_scores),
                fpr,
                tpr,
            )
        )
        out_base = _baseline_output(
            components.baseline, trajectory, components.window
        )
        fpr_b, tpr_b, _ = roc_curve(trajectory.unsafe, out_base.unsafe_scores)
        baseline.append(
            RocSummary(
                "non-context-specific",
                i,
                auc_score(trajectory.unsafe, out_base.unsafe_scores),
                fpr_b,
                tpr_b,
            )
        )
    return Figure9Result(
        curves={
            "context-specific": _pick_best_median_worst(context),
            "non-context-specific": _pick_best_median_worst(baseline),
        }
    )


def render(result: Figure9Result, points: int = 11) -> str:
    """ASCII rendering: sampled TPR-at-FPR rows for the six curves."""
    grid = np.linspace(0.0, 1.0, points)
    headers = ["Setup", "Curve", "AUC", *[f"TPR@{f:.1f}" for f in grid]]
    body = []
    for setup, summaries in result.curves.items():
        for label, summary in zip(("best", "median", "worst"), summaries):
            tpr_at = np.interp(grid, summary.fpr, summary.tpr)
            body.append(
                [setup, label, f"{summary.auc:.3f}", *[f"{v:.2f}" for v in tpr_at]]
            )
    return format_table(
        headers, body, title="Figure 9: best/median/worst per-demo ROC curves"
    )
