"""Remote ingest: the network serving layer in front of the engines.

The paper's monitor only helps in an operating room if live kinematics
can reach it over a network with bounded latency.  This package is that
front door:

- :mod:`~repro.serving.remote.protocol` — the compact length-prefixed
  binary wire protocol (struct-packed headers, seq-numbered float64
  frame payloads, OPEN/FRAME/CLOSE/EVENT/ERROR/HEARTBEAT/STATS/ACK/
  RESUME message types);
- :mod:`~repro.serving.remote.gateway` — :class:`MonitorGateway`, the
  asyncio TCP server routing wire sessions into an embedded
  :class:`~repro.serving.service.MonitorService` (K=1) or sharded
  fleet, with per-connection bounded send queues (backpressure),
  heartbeat/idle timeouts, fail-safe drain-and-close disconnect
  semantics and — with a resume grace window — park/adopt session
  resume over reconnects; :class:`GatewayRunner` bridges it into sync
  programs;
- :mod:`~repro.serving.remote.client` — the SDKs:
  :class:`RemoteMonitorClient` (blocking sockets) and
  :class:`AsyncRemoteMonitorClient` (asyncio); both speak the resume
  protocol transparently, exchanging :class:`ResumeState` captures
  across connections.

The headline guarantee mirrors the rest of the serving stack: a session
fed over a real socket reproduces the local engine's event stream bit
for bit, order included (``tests/serving/test_remote.py``).  Protocol
spec and operator guide: ``docs/remote.md``.
"""

from .client import AsyncRemoteMonitorClient, RemoteMonitorClient, ResumeState
from .gateway import GatewayRunner, MonitorGateway
from .protocol import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    MessageReader,
    MessageType,
    decode_ack,
    decode_events,
    decode_frames,
    decode_header,
    decode_json,
    encode_ack,
    encode_events,
    encode_frames,
    encode_json,
    encode_message,
)

__all__ = [
    "AsyncRemoteMonitorClient",
    "GatewayRunner",
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "MessageReader",
    "MessageType",
    "MonitorGateway",
    "PROTOCOL_VERSION",
    "RemoteMonitorClient",
    "ResumeState",
    "decode_ack",
    "decode_events",
    "decode_frames",
    "decode_header",
    "decode_json",
    "encode_ack",
    "encode_events",
    "encode_frames",
    "encode_json",
    "encode_message",
]
