"""1-D convolution layer.

The paper's best-performing erroneous-gesture detectors are 1D-CNNs
(Tables V-VI, Discussion Section VI).  This layer convolves along the time
axis of ``(batch, time, channels)`` input using an im2col formulation so
both passes reduce to matrix multiplications.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError, ShapeError
from ..initializers import glorot_uniform, zeros_init
from .base import Layer
from .contract import contract


class Conv1D(Layer):
    """Temporal convolution: ``(batch, time, in_ch) -> (batch, time', filters)``.

    Parameters
    ----------
    filters:
        Number of output channels.
    kernel_size:
        Receptive-field length along the time axis.
    padding:
        ``"valid"`` (no padding, ``time' = time - kernel_size + 1``) or
        ``"same"`` (zero padding, ``time' = time``).
    """

    def __init__(
        self, filters: int, kernel_size: int = 3, padding: str = "same"
    ) -> None:
        super().__init__()
        if filters < 1:
            raise ConfigurationError("filters must be >= 1")
        if kernel_size < 1:
            raise ConfigurationError("kernel_size must be >= 1")
        if padding not in ("valid", "same"):
            raise ConfigurationError("padding must be 'valid' or 'same'")
        self.filters = int(filters)
        self.kernel_size = int(kernel_size)
        self.padding = padding
        self._cache: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        if len(input_shape) != 2:
            raise ShapeError(
                f"Conv1D expects (time, channels) input shape, got {input_shape}"
            )
        time_steps, channels = input_shape
        out_time = self._output_time(time_steps)
        if out_time < 1:
            raise ConfigurationError(
                f"kernel_size {self.kernel_size} larger than padded input "
                f"length {time_steps}"
            )
        self.params = {
            "W": glorot_uniform((self.kernel_size, channels, self.filters), rng),
            "b": zeros_init((self.filters,), rng),
        }
        self.grads = {key: np.zeros_like(val) for key, val in self.params.items()}
        self._input_shape = tuple(input_shape)
        self._output_shape = (out_time, self.filters)
        self.built = True

    def _output_time(self, time_steps: int) -> int:
        if self.padding == "same":
            return time_steps
        return time_steps - self.kernel_size + 1

    def _pad_amounts(self) -> tuple[int, int]:
        if self.padding == "valid":
            return 0, 0
        total = self.kernel_size - 1
        left = total // 2
        return left, total - left

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        x = self._require_ndim(x, 3, "Conv1D input")
        batch, time_steps, channels = x.shape
        if channels != self.params["W"].shape[1]:
            raise ShapeError(
                f"Conv1D built for {self.params['W'].shape[1]} channels, got {channels}"
            )
        left, right = self._pad_amounts()
        if left or right:
            x_padded = np.pad(x, ((0, 0), (left, right), (0, 0)))
        else:
            x_padded = x
        out_time = self._output_time(time_steps)
        k, in_ch = self.kernel_size, channels

        # im2col: (batch, out_time, kernel * channels)
        idx = np.arange(out_time)[:, None] + np.arange(k)[None, :]
        columns = x_padded[:, idx, :].reshape(batch, out_time, k * in_ch)
        w_flat = self.params["W"].reshape(k * in_ch, self.filters)
        out = contract(columns, w_flat, training) + self.params["b"]
        if training:
            self._cache = {
                "columns": columns,
                "x_shape": np.array(x.shape),
                "padded_time": np.array([x_padded.shape[1]]),
            }
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_built()
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        columns = self._cache["columns"]
        batch, time_steps, channels = (int(v) for v in self._cache["x_shape"])
        padded_time = int(self._cache["padded_time"][0])
        out_time = columns.shape[1]
        k = self.kernel_size
        grad_output = np.asarray(grad_output, dtype=float)
        if grad_output.shape != (batch, out_time, self.filters):
            raise ShapeError(
                f"grad_output shape {grad_output.shape} does not match "
                f"({batch}, {out_time}, {self.filters})"
            )

        w_flat = self.params["W"].reshape(k * channels, self.filters)
        flat_cols = columns.reshape(-1, k * channels)
        flat_grad = grad_output.reshape(-1, self.filters)
        self.grads["W"][...] = (flat_cols.T @ flat_grad).reshape(self.params["W"].shape)
        self.grads["b"][...] = flat_grad.sum(axis=0)

        # Scatter column gradients back onto the (padded) input.
        d_cols = (flat_grad @ w_flat.T).reshape(batch, out_time, k, channels)
        d_padded = np.zeros((batch, padded_time, channels))
        for offset in range(k):
            d_padded[:, offset : offset + out_time, :] += d_cols[:, :, offset, :]
        left, __ = self._pad_amounts()
        grad_input = d_padded[:, left : left + time_steps, :]
        self._cache = None
        return grad_input

    def get_config(self) -> dict:
        return {
            "filters": self.filters,
            "kernel_size": self.kernel_size,
            "padding": self.padding,
        }
