"""Online (streaming) safety monitoring with reaction-time analysis.

Reproduces the semantics of the paper's Figure 8: the monitor consumes
kinematics frame by frame, infers the current gesture, applies the
gesture's error classifier, and raises alerts; afterwards the detection
timeline is compared against ground truth to compute jitter and reaction
times (Equation 4 of the paper).

Run:  python examples/online_monitoring.py
"""

import numpy as np

from repro.config import MonitorConfig, TrainingConfig, WindowConfig
from repro.core import (
    ErrorClassifierLibrary,
    GestureClassifier,
    SafetyMonitor,
    evaluate_timing,
)
from repro.core.error_classifiers import ErrorClassifierConfig
from repro.core.gesture_classifier import GestureClassifierConfig
from repro.jigsaws import make_suturing_dataset


def train_monitor(train) -> SafetyMonitor:
    """Train both pipeline stages on the training split."""
    window = WindowConfig(5, 1)
    gesture_classifier = GestureClassifier(
        GestureClassifierConfig(
            lstm_units=(32, 16),
            dense_units=16,
            window=window,
            training=TrainingConfig(max_epochs=8, batch_size=128),
            max_train_windows=8000,
        ),
        seed=0,
    )
    gesture_classifier.fit(train)
    library = ErrorClassifierLibrary(
        ErrorClassifierConfig(
            architecture="conv",
            hidden=(16, 8),
            dense_units=8,
            training=TrainingConfig(max_epochs=10, batch_size=128),
            max_train_windows=4000,
        ),
        seed=1,
    )
    library.fit(train.windows(window))
    return SafetyMonitor(
        gesture_classifier,
        library,
        MonitorConfig(gesture_window=window, error_window=window),
    )


def main() -> None:
    print("Preparing data and training the monitor ...")
    dataset = make_suturing_dataset(n_demos=15, rng=3)
    train, test = dataset.split_by_trials(2)
    monitor = train_monitor(train)

    # Pick a held-out demonstration containing erroneous gestures.
    demo = next(
        d for d in test.demonstrations if d.trajectory.unsafe is not None
        and d.trajectory.unsafe.any()
    )
    trajectory = demo.trajectory
    print(
        f"Streaming demo (subject {demo.subject}, trial {demo.trial}): "
        f"{trajectory.n_frames} frames @ {trajectory.frame_rate_hz:.0f} Hz"
    )

    # --- online loop: one frame at a time, as the robot would emit them.
    latencies = []
    alert_frames = []
    for frame, gesture, unsafe_prob, latency_ms in monitor.stream(trajectory):
        latencies.append(latency_ms)
        if unsafe_prob >= 0.5:
            alert_frames.append(frame)
            if len(alert_frames) <= 5:
                t_ms = 1000.0 * frame / trajectory.frame_rate_hz
                print(
                    f"  ALERT at frame {frame} (t={t_ms:7.0f} ms): "
                    f"G{gesture} unsafe p={unsafe_prob:.2f}"
                )
    print(
        f"{len(alert_frames)} alert frames; "
        f"mean per-frame latency {np.mean(latencies):.2f} ms "
        f"(paper reports ~2 ms/window)"
    )

    # --- offline timing analysis of the same run (Figure 8 semantics).
    output = monitor.process(trajectory)
    report = evaluate_timing([(trajectory, output)])
    print(f"mean reaction time: {report.mean_reaction_ms():+.0f} ms "
          "(positive = before error onset)")
    print(f"early detections:   {report.early_detection_pct():.0f}%")
    for gesture in sorted(report.jitter):
        jitter_ms = report.mean_jitter_ms(gesture)
        accuracy = 100.0 * report.gesture_accuracy(gesture)
        print(f"  G{gesture}: jitter {jitter_ms:+6.0f} ms, detection acc {accuracy:5.1f}%")


if __name__ == "__main__":
    main()
