"""Tests for the remote ingest gateway, wire protocol and client SDKs.

The tentpole invariant: a session fed over a **real TCP socket**
reproduces the local :class:`MonitorService` event stream bit for bit,
order included, for K ∈ {1, 2} shards under both inference backends.
Plus the transport semantics the wire adds: framing/truncation errors,
heartbeat and idle timeouts, bounded-send-queue backpressure, and the
fail-safe drain-and-close contract for dying clients and dying shard
workers.
"""

import asyncio
import contextlib
import os
import signal
import socket
import struct
import time

import numpy as np
import pytest

from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ShapeError,
    WorkerError,
)
from repro.serving import (
    AsyncRemoteMonitorClient,
    MonitorGateway,
    MonitorService,
    RemoteMonitorClient,
    ResumeState,
    SessionEvent,
    make_random_walk_trajectory,
    make_synthetic_monitor,
    monitor_from_bytes,
    monitor_to_bytes,
)
from repro.serving.remote import protocol
from repro.serving.remote.protocol import (
    HEADER_SIZE,
    MAX_PAYLOAD,
    PROTOCOL_VERSION,
    MessageReader,
    MessageType,
    decode_ack,
    decode_events,
    decode_frames,
    decode_header,
    encode_ack,
    encode_events,
    encode_frames,
    encode_message,
)

N_FEATURES = 10


@pytest.fixture(scope="module")
def monitor():
    return make_synthetic_monitor(n_features=N_FEATURES, seed=0)


@contextlib.contextmanager
def running_gateway(monitor=None, **kwargs):
    """A gateway serving on a loop thread; yields its GatewayRunner."""
    kwargs.setdefault("heartbeat_interval_s", 0.2)
    kwargs.setdefault("idle_timeout_s", 30.0)
    gateway = MonitorGateway(monitor, **kwargs)
    with gateway.serve_in_thread() as runner:
        yield runner


def local_events(monitor, trajectory, backend="reference", session_id="s"):
    """The reference stream: one local MonitorService, one session."""
    service = MonitorService(monitor, max_sessions=4, backend=backend)
    service.open_session(session_id)
    service.feed(session_id, trajectory.frames)
    return service.drain()


def event_key(event):
    return (
        event.session_id,
        event.frame_index,
        event.gesture,
        event.score,
        event.flag,
        event.error,
    )


def wait_until(predicate, timeout_s=10.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


class TestProtocol:
    def test_message_header_round_trip(self):
        data = encode_message(MessageType.STATS, b"abc")
        assert len(data) == HEADER_SIZE + 3
        msg_type, length = decode_header(data)
        assert msg_type is MessageType.STATS
        assert length == 3

    def test_frames_round_trip(self):
        frames = np.arange(12, dtype=float).reshape(3, 4) * 0.5
        sid, seq, decoded = decode_frames(encode_frames("theatre-7", frames, seq=41))
        assert sid == "theatre-7"
        assert seq == 41
        assert decoded.dtype == np.float64
        np.testing.assert_array_equal(decoded, frames)

    def test_single_frame_promoted(self):
        sid, seq, decoded = decode_frames(encode_frames("s", np.zeros(5)))
        assert seq == 0
        assert decoded.shape == (1, 5)

    def test_ack_round_trip(self):
        sid, seq = decode_ack(encode_ack("theatre-7", 2**40))
        assert sid == "theatre-7" and seq == 2**40
        with pytest.raises(ProtocolError):
            decode_ack(encode_ack("s", 3)[:-2])

    def test_events_round_trip(self):
        events = [
            SessionEvent("a", 0, 3, 0.25, False),
            SessionEvent("b-long-session-id", 17, 0, 0.99, True, "worker died"),
        ]
        decoded = decode_events(encode_events(events))
        assert decoded == events
        assert decode_events(encode_events([])) == []

    def test_incremental_reader_handles_arbitrary_chunking(self):
        stream = (
            encode_message(MessageType.HEARTBEAT)
            + encode_message(MessageType.FRAME, encode_frames("s", np.ones((2, 3))))
            + encode_message(MessageType.EVENT, encode_events([SessionEvent("s", 0, 1, 0.5, False)]))
        )
        reader = MessageReader()
        collected = []
        for i in range(len(stream)):  # one byte at a time
            reader.feed(stream[i : i + 1])
            collected.extend(reader.messages())
        assert [t for t, _ in collected] == [
            MessageType.HEARTBEAT,
            MessageType.FRAME,
            MessageType.EVENT,
        ]
        assert reader.buffered == 0
        sid, seq, frames = decode_frames(collected[1][1])
        assert sid == "s" and frames.shape == (2, 3)

    def test_foreign_version_rejected(self):
        bad = struct.pack("!BBHI", PROTOCOL_VERSION + 1, 1, 0, 0)
        with pytest.raises(ProtocolError, match="version"):
            decode_header(bad)

    def test_unknown_message_type_rejected(self):
        bad = struct.pack("!BBHI", PROTOCOL_VERSION, 200, 0, 0)
        with pytest.raises(ProtocolError, match="message type"):
            decode_header(bad)

    def test_nonzero_reserved_field_rejected(self):
        bad = struct.pack("!BBHI", PROTOCOL_VERSION, 1, 7, 0)
        with pytest.raises(ProtocolError, match="reserved"):
            decode_header(bad)

    def test_hostile_payload_length_rejected(self):
        bad = struct.pack("!BBHI", PROTOCOL_VERSION, 1, 0, MAX_PAYLOAD + 1)
        with pytest.raises(ProtocolError, match="cap"):
            decode_header(bad)

    @pytest.mark.parametrize("cut", [0, 1, 3, 9, 17])
    def test_truncated_frame_payload_rejected(self, cut):
        payload = encode_frames("session", np.ones((2, 4)))
        with pytest.raises(ProtocolError):
            decode_frames(payload[:cut])

    def test_frame_payload_length_mismatch_rejected(self):
        payload = encode_frames("s", np.ones((2, 4)))
        with pytest.raises(ProtocolError, match="carries"):
            decode_frames(payload[:-8])

    @pytest.mark.parametrize("cut", [0, 3, 5, 12])
    def test_truncated_event_payload_rejected(self, cut):
        payload = encode_events([SessionEvent("sess", 3, 1, 0.5, True, "x")])
        with pytest.raises(ProtocolError):
            decode_events(payload[:cut])

    def test_trailing_garbage_in_events_rejected(self):
        payload = encode_events([SessionEvent("s", 0, 1, 0.5, False)])
        with pytest.raises(ProtocolError, match="trailing"):
            decode_events(payload + b"junk")


class TestRemoteParity:
    @pytest.mark.parametrize("n_shards", [1, 2])
    @pytest.mark.parametrize("backend", ["reference", "compiled"])
    def test_wire_session_matches_local_service_bit_for_bit(
        self, monitor, n_shards, backend
    ):
        """The headline guarantee: the socket adds nothing and loses
        nothing — scores, gestures, flags and order are identical."""
        trajectory = make_random_walk_trajectory(
            40, n_features=N_FEATURES, seed=11
        )
        reference = local_events(monitor, trajectory, backend=backend)
        with running_gateway(
            monitor, n_shards=n_shards, max_sessions=8, backend=backend
        ) as runner:
            with RemoteMonitorClient(runner.host, runner.port) as client:
                events = client.stream_session(
                    trajectory.frames, session_id="s", chunk_size=7
                )
        assert [event_key(e) for e in events] == [
            event_key(e) for e in reference
        ]

    def test_multiple_clients_each_match_their_isolated_stream(self, monitor):
        """Sessions multiplexed over several connections each reproduce
        their isolated stream() run, frame order preserved."""
        fleet = {
            f"proc-{i}": make_random_walk_trajectory(
                25 + 5 * i, n_features=N_FEATURES, seed=40 + i
            )
            for i in range(4)
        }
        with running_gateway(monitor, n_shards=1, max_sessions=8) as runner:
            clients = [
                RemoteMonitorClient(runner.host, runner.port) for _ in range(2)
            ]
            try:
                owners = {}
                for i, (sid, trajectory) in enumerate(fleet.items()):
                    client = clients[i % 2]
                    owners[sid] = client
                    assert client.open_session(sid) == sid
                    client.feed(sid, trajectory.frames)
                for sid, trajectory in fleet.items():
                    events = owners[sid].events_for(sid, trajectory.n_frames)
                    assert [e.frame_index for e in events] == list(
                        range(trajectory.n_frames)
                    )
                    gestures, scores = [], []
                    for _, gesture, score, _ in monitor.stream(trajectory):
                        gestures.append(gesture)
                        scores.append(score)
                    assert [e.gesture for e in events] == gestures
                    assert [e.score for e in events] == scores
                    summary = owners[sid].close_session(sid)
                    assert summary["n_frames"] == trajectory.n_frames
            finally:
                for client in clients:
                    client.close()

    def test_async_client_round_trip_in_one_loop(self, monitor):
        """The asyncio SDK against an in-loop gateway: open, chunked
        feeds, merged event stream, close summary, stats."""
        trajectory = make_random_walk_trajectory(
            30, n_features=N_FEATURES, seed=13
        )
        reference = local_events(monitor, trajectory)

        async def run():
            async with MonitorGateway(
                monitor, n_shards=1, max_sessions=4
            ) as gateway:
                client = await AsyncRemoteMonitorClient.connect(
                    gateway.host, gateway.port
                )
                sid = await client.open_session("s")
                for start in range(0, trajectory.n_frames, 10):
                    await client.feed(
                        sid, trajectory.frames[start : start + 10]
                    )
                events = []
                async for event in client.events():
                    events.append(event)
                    if len(events) == trajectory.n_frames:
                        break
                summary = await client.close_session(sid)
                stats = await client.gateway_stats()
                await client.aclose()
                return events, summary, stats

        events, summary, stats = asyncio.run(run())
        assert [event_key(e) for e in events] == [
            event_key(e) for e in reference
        ]
        assert summary["n_frames"] == trajectory.n_frames
        assert stats["frames_received"] == trajectory.n_frames
        assert stats["sessions"]["closed_total"] == 1


class TestErrors:
    def test_gateway_errors_keep_their_repro_types(self, monitor):
        with running_gateway(monitor, n_shards=1, max_sessions=1) as runner:
            with RemoteMonitorClient(runner.host, runner.port) as client:
                sid = client.open_session("only")
                with pytest.raises(ConfigurationError):
                    client.open_session("only")  # duplicate id
                with pytest.raises(ConfigurationError):
                    client.open_session("overflow")  # all slots in use
                # feed is unacknowledged: the ShapeError arrives as an
                # ERROR message and raises on the next stream read.
                client.feed(sid, np.zeros((2, N_FEATURES + 3)))
                with pytest.raises(ShapeError):
                    client.gateway_stats()
                # The connection survives typed errors.
                client.feed(sid, np.zeros((3, N_FEATURES)))
                assert len(client.events_for(sid, 3)) == 3
                with pytest.raises(ProtocolError):
                    client.close_session("ghost")

    def test_events_for_preserves_other_sessions_on_error(self, monitor):
        """An async ERROR raised mid-collection must not swallow other
        sessions' already-received events — they stay buffered."""
        with running_gateway(monitor, n_shards=1, max_sessions=4) as runner:
            with RemoteMonitorClient(runner.host, runner.port) as client:
                client.open_session("a")
                client.open_session("b")
                client.feed("b", np.zeros((2, N_FEATURES)))
                # Rejected async feed: the ERROR trails b's two events.
                client.feed("a", np.zeros((1, N_FEATURES + 2)))
                with pytest.raises(ShapeError):
                    client.events_for("a", 1)
                # b's events were popped into the requeue before the
                # ERROR raised; they must have been restored.
                events = client.events_for("b", 2)
                assert [e.frame_index for e in events] == [0, 1]

    def test_async_feed_error_raises_from_event_stream(self, monitor):
        async def run():
            async with MonitorGateway(
                monitor, n_shards=1, max_sessions=4
            ) as gateway:
                client = await AsyncRemoteMonitorClient.connect(
                    gateway.host, gateway.port
                )
                sid = await client.open_session()
                await client.feed(sid, np.zeros((2, N_FEATURES + 1)))
                with pytest.raises(ShapeError):
                    await asyncio.wait_for(client.next_event(), 10.0)
                await client.aclose()

        asyncio.run(run())

    def test_constructor_validation(self, monitor):
        with pytest.raises(ConfigurationError):
            MonitorGateway()  # neither monitor nor bytes
        with pytest.raises(ConfigurationError):
            MonitorGateway(monitor, monitor_bytes=b"x")  # both
        with pytest.raises(ConfigurationError):
            MonitorGateway(monitor, n_shards=0)
        with pytest.raises(ConfigurationError):
            MonitorGateway(monitor, backend="turbo")
        with pytest.raises(ConfigurationError):
            MonitorGateway(monitor, send_queue_max=1)
        with pytest.raises(ConfigurationError):
            # Consumer-only clients only talk by echoing heartbeats; a
            # tighter idle bound would disconnect every healthy one.
            MonitorGateway(
                monitor, heartbeat_interval_s=10.0, idle_timeout_s=5.0
            )


class TestFailSafe:
    def test_client_disconnect_drains_then_fails_safe(self, monitor):
        """An abruptly dead client's accepted frames are still processed
        (drain), then its session closes with a terminal error-set,
        flag=True event at the gateway — never silently dropped."""
        trajectory = make_random_walk_trajectory(
            20, n_features=N_FEATURES, seed=21
        )
        with running_gateway(monitor, n_shards=1, max_sessions=4) as runner:
            client = RemoteMonitorClient(runner.host, runner.port)
            client.open_session("dying")
            client.feed("dying", trajectory.frames)
            client.close()  # vanish without CLOSE
            gateway = runner.gateway
            assert wait_until(lambda: gateway.failsafe_events)
            (event,) = gateway.failsafe_events
            assert event.session_id == "dying"
            assert event.flag is True
            assert "disconnect" in event.error
            # Drain-and-close: every accepted frame was processed first.
            assert event.frame_index == trajectory.n_frames
            assert gateway.failed_sessions == {"dying": event.error}
            assert gateway.n_open_sessions == 0
            stats = runner.stats()
            assert stats["sessions"]["failed_total"] == 1
            assert stats["frames_received"] == trajectory.n_frames

    def test_killed_shard_worker_surfaces_error_events(self, monitor):
        """Killing a shard worker mid-stream: the gateway records the
        fail-safe events AND pushes them to the owning client."""
        with running_gateway(
            monitor, n_shards=2, max_sessions=16
        ) as runner:
            gateway = runner.gateway
            gateway._engine.frontend.poll_interval_s = 0.05
            service = gateway._engine.service
            with RemoteMonitorClient(runner.host, runner.port) as client:
                sids = [client.open_session(f"proc-{i}") for i in range(6)]
                placement = {sid: service.shard_of(sid) for sid in sids}
                assert len(set(placement.values())) == 2
                for sid in sids:
                    client.feed(
                        sid,
                        make_random_walk_trajectory(
                            10, n_features=N_FEATURES, seed=60
                        ).frames,
                    )
                for sid in sids:  # let the backlog fully drain first
                    client.events_for(sid, 10)
                victim_shard = placement[sids[0]]
                victims = {
                    s for s, sh in placement.items() if sh == victim_shard
                }
                process = service._shards[victim_shard].process
                os.kill(process.pid, signal.SIGKILL)
                process.join(10.0)
                # The fail-safe events reach the client over the wire...
                crashed = set()
                while len(crashed) < len(victims):
                    event = client.next_event()
                    assert event.error is not None and event.flag
                    crashed.add(event.session_id)
                assert crashed == victims
                # Closing a crash-failed session names the failure, not
                # a generic "no such session".
                with pytest.raises(WorkerError, match="failed"):
                    client.close_session(sids[0])
            # ...and are recorded at the gateway.
            assert wait_until(
                lambda: set(gateway.failed_sessions) >= victims
            )
            for sid in victims:
                assert sid in gateway.failed_sessions

    def test_local_engine_tick_failure_fails_safe(self, monitor):
        """K=1 has no worker process to crash, but a tick() exception
        must still fail the embedded engine *safe*: terminal error
        events for every session, WorkerError on further use — never a
        gateway that silently stops flagging."""

        async def run():
            async with MonitorGateway(
                monitor, n_shards=1, max_sessions=4
            ) as gateway:
                client = await AsyncRemoteMonitorClient.connect(
                    gateway.host, gateway.port
                )
                sid = await client.open_session("s")
                await client.feed(sid, np.zeros((2, N_FEATURES)))
                for _ in range(2):
                    event = await asyncio.wait_for(client.next_event(), 10.0)
                    assert event.error is None

                def boom():
                    raise RuntimeError("synthetic tick explosion")

                gateway._engine.service.tick = boom
                await client.feed(sid, np.zeros((3, N_FEATURES)))
                event = await asyncio.wait_for(client.next_event(), 10.0)
                assert event.flag is True
                assert "tick failed" in event.error
                assert event.frame_index == 2  # frames served before the loss
                with pytest.raises(WorkerError, match="tick failed"):
                    await client.open_session("another")
                await client.aclose()
                return dict(gateway.failed_sessions)

        failed = asyncio.run(run())
        assert "s" in failed and "tick failed" in failed["s"]

    def test_stop_leaves_no_orphan_workers(self, monitor):
        gateway = MonitorGateway(monitor, n_shards=2, max_sessions=4)
        runner = gateway.serve_in_thread()
        runner.start()
        processes = [
            h.process for h in gateway._engine.service._shards.values()
        ]
        assert processes and all(p.is_alive() for p in processes)
        with RemoteMonitorClient(runner.host, runner.port) as client:
            sid = client.open_session()
            client.feed(sid, np.zeros((3, N_FEATURES)))
            client.events_for(sid, 3)
        runner.stop()
        for process in processes:
            assert not process.is_alive()
        runner.stop()  # idempotent

    def test_idle_connection_is_disconnected(self, monitor):
        with running_gateway(
            monitor,
            n_shards=1,
            max_sessions=4,
            heartbeat_interval_s=0.05,
            idle_timeout_s=0.3,
        ) as runner:
            raw = socket.create_connection((runner.host, runner.port))
            raw.settimeout(10.0)
            # Never answer anything: the gateway must hang up on us.
            deadline = time.monotonic() + 10.0
            saw_eof = False
            while time.monotonic() < deadline:
                data = raw.recv(4096)
                if not data:
                    saw_eof = True
                    break
            raw.close()
            assert saw_eof
            assert runner.stats()["connections"]["idle_disconnects"] >= 1

    def test_heartbeat_echo_keeps_connection_alive(self, monitor):
        with running_gateway(
            monitor,
            n_shards=1,
            max_sessions=4,
            heartbeat_interval_s=0.05,
            idle_timeout_s=0.4,
        ) as runner:
            with RemoteMonitorClient(runner.host, runner.port) as client:
                sid = client.open_session("steady")
                # Stay connected well past the idle timeout: every stats
                # round trip also echoes any pending heartbeats.  Spin on
                # observed state (heartbeats exchanged, idle window fully
                # elapsed) rather than a fixed sleep count so slow CI
                # machines can't race the deadline.
                start = time.monotonic()
                deadline = start + 10.0
                while time.monotonic() < deadline:
                    stats = client.gateway_stats()
                    if (
                        stats["heartbeats_sent"] > 0
                        and time.monotonic() - start > 0.6
                    ):
                        break
                    time.sleep(0.02)
                else:
                    pytest.fail("gateway never sent a heartbeat")
                client.feed(sid, np.zeros((2, N_FEATURES)))
                assert len(client.events_for(sid, 2)) == 2
                assert client.close_session(sid)["n_frames"] == 2
            stats = runner.stats()
            assert stats["heartbeats_sent"] > 0
            assert stats["connections"]["idle_disconnects"] == 0
            assert not runner.gateway.failed_sessions


class TestBackpressure:
    def test_send_queue_overflow_disconnects_slow_consumer(self, monitor):
        """A consumer that stops reading must be cut loose — its bounded
        queue overflows, the connection drops, its sessions fail safe —
        while the gateway keeps serving everyone else."""
        with running_gateway(
            monitor, n_shards=1, max_sessions=8, send_queue_max=8
        ) as runner:
            gateway = runner.gateway
            slow = RemoteMonitorClient(runner.host, runner.port)
            slow.open_session("slow")

            async def park_writer():
                (conn,) = gateway._connections.values()
                conn.writer_gate.clear()

            runner.run(park_writer())
            # 50 events against a parked writer and a queue of 8.
            slow.feed("slow", np.zeros((50, N_FEATURES)))
            assert wait_until(lambda: gateway.failed_sessions)
            assert "overflow" in gateway.failed_sessions["slow"]
            (event,) = [
                e for e in gateway.failsafe_events if e.session_id == "slow"
            ]
            assert event.flag is True
            stats = runner.stats()
            assert stats["connections"]["overflow_disconnects"] == 1
            assert stats["connections"]["open"] == 0
            slow.close()
            # The gateway still serves a well-behaved client afterwards.
            with RemoteMonitorClient(runner.host, runner.port) as client:
                events = client.stream_session(
                    np.zeros((5, N_FEATURES)), session_id="healthy"
                )
                assert len(events) == 5


class TestGatewayStats:
    def test_counters_and_shard_aggregation(self, monitor):
        with running_gateway(monitor, n_shards=2, max_sessions=8) as runner:
            with RemoteMonitorClient(
                runner.host, runner.port
            ) as a, RemoteMonitorClient(runner.host, runner.port) as b:
                for i, client in enumerate((a, b)):
                    sid = client.open_session(f"proc-{i}")
                    client.feed(sid, np.zeros((4, N_FEATURES)))
                    client.events_for(sid, 4)
                stats = a.gateway_stats()
                assert stats["protocol_version"] == PROTOCOL_VERSION
                assert stats["n_shards"] == 2
                assert stats["connections"]["open"] == 2
                assert stats["connections"]["total"] == 2
                assert stats["sessions"]["open"] == 2
                assert stats["sessions"]["peak_open"] == 2
                assert stats["frames_received"] == 8
                assert stats["events_sent"] >= 8
                assert stats["queues"]["capacity"] == 1024
                shard_totals = sum(
                    s["frames_processed"] for s in stats["shards"].values()
                )
                assert shard_totals == 8
                assert all(
                    s["tick_p99_ms"] >= s["tick_p50_ms"] >= 0.0
                    for s in stats["shards"].values()
                )


class TestGatewayResize:
    def test_client_session_rides_through_resizes(self, monitor):
        """A socket session streaming across a K=2→4→1 gateway resize
        sees the exact event stream of the local engine — no fail-safe
        closure, no gap, no reorder — and STATS reports the resizes."""
        trajectory = make_random_walk_trajectory(
            45, n_features=N_FEATURES, seed=61
        )
        reference = local_events(
            monitor, trajectory, session_id="theatre-elastic"
        )
        with running_gateway(monitor, n_shards=2, max_sessions=16) as runner:
            with RemoteMonitorClient(runner.host, runner.port) as client:
                sid = client.open_session("theatre-elastic")
                chunks = np.array_split(trajectory.frames, 3)
                events = []
                client.feed(sid, chunks[0])
                events += client.events_for(sid, len(chunks[0]))
                summary = runner.run(runner.gateway.resize(4))
                assert (summary["from"], summary["to"]) == (2, 4)
                client.feed(sid, chunks[1])
                events += client.events_for(sid, len(chunks[1]))
                runner.run(runner.gateway.resize(1))
                client.feed(sid, chunks[2])
                events += client.events_for(sid, len(chunks[2]))
                stats = client.gateway_stats()
                close_summary = client.close_session(sid)
        assert [event_key(e) for e in events] == [
            event_key(e) for e in reference
        ]
        assert close_summary["n_frames"] == trajectory.n_frames
        assert stats["n_shards"] == 1
        assert stats["resizes"]["count"] == 2
        assert [
            (e["from"], e["to"]) for e in stats["resizes"]["events"]
        ] == [(2, 4), (4, 1)]
        assert all(
            e["trigger"] == "manual" for e in stats["resizes"]["events"]
        )
        assert stats["sessions"]["failed_total"] == 0
        assert not runner.gateway.failsafe_events

    def test_embedded_engine_rejects_resize(self, monitor):
        with running_gateway(monitor, n_shards=1, max_sessions=4) as runner:
            with pytest.raises(ConfigurationError, match="n_shards >= 2"):
                runner.run(runner.gateway.resize(2))
            stats = runner.stats()
            assert stats["resizes"]["count"] == 0
            assert stats["resizes"]["autoscaling"] is False


class TestSnapshotRestart:
    def test_backend_choice_survives_gateway_restarts(self, monitor):
        """The satellite contract: a float32 compiled backend embedded
        in the snapshot drives every gateway booted from those bytes —
        across restarts — and the served events match the local
        compiled-f32 engine bit for bit."""
        blob = monitor_to_bytes(monitor, backend="compiled-f32")
        trajectory = make_random_walk_trajectory(
            25, n_features=N_FEATURES, seed=31
        )
        reference = local_events(
            monitor_from_bytes(blob), trajectory, backend="compiled-f32"
        )
        runs = []
        for _ in range(2):  # boot, serve, stop; then boot again
            with running_gateway(monitor_bytes=blob, max_sessions=4) as runner:
                assert runner.gateway.backend == "compiled-f32"
                with RemoteMonitorClient(runner.host, runner.port) as client:
                    runs.append(
                        client.stream_session(trajectory.frames, session_id="s")
                    )
        for events in runs:
            assert [event_key(e) for e in events] == [
                event_key(e) for e in reference
            ]

    def test_explicit_backend_overrides_snapshot(self, monitor):
        blob = monitor_to_bytes(monitor, backend="compiled")
        gateway = MonitorGateway(monitor_bytes=blob, backend="reference")
        assert gateway.backend == "reference"
        gateway = MonitorGateway(monitor_bytes=blob)
        assert gateway.backend == "compiled"


class TestPartialStart:
    def test_failed_bind_terminates_spawned_workers(self, monitor, monkeypatch):
        """A start() that spawns the shard fleet but fails to bind the
        socket must not leave orphaned worker processes behind."""
        from repro.serving import ShardedMonitorService

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        taken_port = blocker.getsockname()[1]

        spawned = []
        original_close = ShardedMonitorService.close

        def capturing_close(self):
            spawned.extend(h.process for h in self._shards.values())
            original_close(self)

        monkeypatch.setattr(ShardedMonitorService, "close", capturing_close)

        async def run():
            gateway = MonitorGateway(
                monitor, n_shards=2, max_sessions=4, port=taken_port
            )
            with pytest.raises(OSError):
                await gateway.start()
            await gateway.stop()  # must not raise on the partial state

        try:
            asyncio.run(run())
        finally:
            blocker.close()
        assert len(spawned) == 2
        for process in spawned:
            assert not process.is_alive()


class TestProtocolOverTheWire:
    def test_garbage_bytes_get_a_protocol_error_then_disconnect(self, monitor):
        with running_gateway(monitor, n_shards=1, max_sessions=4) as runner:
            raw = socket.create_connection((runner.host, runner.port))
            raw.settimeout(10.0)
            raw.sendall(struct.pack("!BBHI", 99, 1, 0, 0))  # wrong version
            reader = MessageReader()
            got_error = False
            try:
                while True:
                    data = raw.recv(4096)
                    if not data:
                        break
                    reader.feed(data)
                    for msg_type, payload in reader.messages():
                        if msg_type is MessageType.ERROR:
                            info = protocol.decode_json(payload)
                            assert info["error_type"] == "ProtocolError"
                            got_error = True
            finally:
                raw.close()
            assert got_error

    def test_malformed_close_session_id_gets_protocol_error(self, monitor):
        """A CLOSE whose session_id is not a string (e.g. a list) must be
        rejected as a protocol violation, not crash the handler."""
        with running_gateway(monitor, n_shards=1, max_sessions=4) as runner:
            raw = socket.create_connection((runner.host, runner.port))
            raw.settimeout(10.0)
            raw.sendall(
                encode_message(
                    MessageType.CLOSE,
                    protocol.encode_json({"session_id": ["not", "a", "str"]}),
                )
            )
            reader = MessageReader()
            got_error = False
            try:
                while not got_error:
                    data = raw.recv(4096)
                    if not data:
                        break
                    reader.feed(data)
                    for msg_type, payload in reader.messages():
                        if msg_type is MessageType.ERROR:
                            info = protocol.decode_json(payload)
                            assert info["error_type"] == "ProtocolError"
                            got_error = True
            finally:
                raw.close()
            assert got_error
            # The gateway is unharmed: a fresh client still gets served.
            with RemoteMonitorClient(runner.host, runner.port) as client:
                events = client.stream_session(
                    np.zeros((3, N_FEATURES)), session_id="after"
                )
                assert len(events) == 3


class TestResume:
    """Session resume over reconnects (PR 7): park/adopt, seq/ack
    replay, token auth, grace expiry, and transparent worker-crash
    recovery — the stream a resuming client assembles must be
    bit-identical to an uninterrupted local run."""

    def test_detach_resume_is_bit_identical(self, monitor):
        trajectory = make_random_walk_trajectory(
            24, n_features=N_FEATURES, seed=71
        )
        reference = local_events(monitor, trajectory, session_id="r")
        with running_gateway(
            monitor, n_shards=2, max_sessions=8, resume_grace_s=30.0
        ) as runner:
            first = RemoteMonitorClient(runner.host, runner.port)
            sid = first.open_session("r")
            first.feed(sid, trajectory.frames[:10])
            events = first.events_for(sid, 10)
            # Drop the connection without closing the session: the
            # gateway parks it for the grace window instead of failing
            # it safe.
            first.close()
            state = first.detach_session(sid)
            assert state.token and state.next_seq == 10
            assert wait_until(lambda: runner.gateway.n_parked_sessions == 1)
            with RemoteMonitorClient(runner.host, runner.port) as second:
                assert second.resume_session(state) == sid
                second.feed(sid, trajectory.frames[10:])
                events += second.events_for(sid, 14)
                summary = second.close_session(sid)
            assert summary["n_frames"] == 24
            assert [event_key(e) for e in events] == [
                event_key(e) for e in reference
            ]
            assert not runner.gateway.failed_sessions
            stats = runner.stats()["resume"]
            assert stats["enabled"] and stats["resumed_total"] == 1
            assert stats["parked_total"] == 1 and stats["parked"] == 0

    def test_resume_replays_unacked_frames_and_missed_events(self, monitor):
        """Disconnect with frames possibly unacked and events undelivered:
        the client replays its buffered tail (the gateway trims the
        overlap by seq) and the gateway replays the missed events — no
        gap, no duplicate."""
        trajectory = make_random_walk_trajectory(
            16, n_features=N_FEATURES, seed=72
        )
        reference = local_events(monitor, trajectory, session_id="u")
        with running_gateway(
            monitor, n_shards=1, max_sessions=4, resume_grace_s=30.0
        ) as runner:
            first = RemoteMonitorClient(runner.host, runner.port)
            sid = first.open_session("u")
            first.feed(sid, trajectory.frames[:9])
            # Read nothing back: every event is "missed", and the ACK
            # may or may not have crossed the wire when we vanish.
            first.close()
            state = first.detach_session(sid)
            assert state.acked_seq == 0 and len(state.buffer) == 1
            assert wait_until(lambda: runner.gateway.n_parked_sessions == 1)
            with RemoteMonitorClient(runner.host, runner.port) as second:
                second.resume_session(state)
                second.feed(sid, trajectory.frames[9:])
                events = second.events_for(sid, 16)
                second.close_session(sid)
            assert [event_key(e) for e in events] == [
                event_key(e) for e in reference
            ]

    def test_pending_events_carry_over(self, monitor):
        """Events decoded by the dead connection but never consumed ride
        the ResumeState and come out of the new client first."""
        trajectory = make_random_walk_trajectory(
            8, n_features=N_FEATURES, seed=73
        )
        reference = local_events(monitor, trajectory, session_id="p")
        with running_gateway(
            monitor, n_shards=1, max_sessions=4, resume_grace_s=30.0
        ) as runner:
            first = RemoteMonitorClient(runner.host, runner.port)
            sid = first.open_session("p")
            first.feed(sid, trajectory.frames)
            # Force the events onto this client's buffer, then put them
            # back unconsumed so detach must carry them.
            events = first.events_for(sid, 8)
            first._events.extendleft(reversed(events))
            first.close()
            state = first.detach_session(sid)
            assert len(state.pending_events) == 8
            assert state.events_received == 8
            assert wait_until(lambda: runner.gateway.n_parked_sessions == 1)
            with RemoteMonitorClient(runner.host, runner.port) as second:
                second.resume_session(state)
                events = second.events_for(sid, 8)
                second.close_session(sid)
            assert [event_key(e) for e in events] == [
                event_key(e) for e in reference
            ]

    def test_resume_token_mismatch_rejected(self, monitor):
        with running_gateway(
            monitor, n_shards=1, max_sessions=4, resume_grace_s=30.0
        ) as runner:
            first = RemoteMonitorClient(runner.host, runner.port)
            sid = first.open_session("t")
            first.feed(sid, np.zeros((2, N_FEATURES)))
            first.events_for(sid, 2)
            first.close()
            state = first.detach_session(sid)
            assert wait_until(lambda: runner.gateway.n_parked_sessions == 1)
            state.token = "0" * len(state.token)
            with RemoteMonitorClient(runner.host, runner.port) as second:
                with pytest.raises(ProtocolError, match="token mismatch"):
                    second.resume_session(state)
            # The parked session is untouched — a forger must not be
            # able to evict it.
            assert runner.gateway.n_parked_sessions == 1

    def test_resume_unknown_session_rejected(self, monitor):
        with running_gateway(
            monitor, n_shards=1, max_sessions=4, resume_grace_s=30.0
        ) as runner:
            with RemoteMonitorClient(runner.host, runner.port) as client:
                ghost = ResumeState(
                    session_id="never-opened",
                    token="f" * 32,
                    next_seq=0,
                    acked_seq=0,
                    events_received=0,
                )
                with pytest.raises(ProtocolError, match="no parked session"):
                    client.resume_session(ghost)

    def test_grace_expiry_fails_safe(self, monitor):
        with running_gateway(
            monitor, n_shards=1, max_sessions=4, resume_grace_s=0.2
        ) as runner:
            first = RemoteMonitorClient(runner.host, runner.port)
            sid = first.open_session("late")
            first.feed(sid, np.zeros((2, N_FEATURES)))
            first.events_for(sid, 2)
            first.close()
            state = first.detach_session(sid)
            assert wait_until(lambda: sid in runner.gateway.failed_sessions)
            assert "grace window expired" in runner.gateway.failed_sessions[sid]
            assert runner.gateway.n_parked_sessions == 0
            # Resuming after expiry names the failure.
            with RemoteMonitorClient(runner.host, runner.port) as second:
                with pytest.raises(WorkerError, match="failed"):
                    second.resume_session(state)
            assert runner.stats()["resume"]["expired_total"] == 1

    def test_resume_disabled_by_default(self, monitor):
        """resume_grace_s=0 keeps PR 4's fail-safe disconnect contract:
        no token in the OPEN ack, detach refuses, and a disconnect
        drains-and-closes as before."""
        with running_gateway(monitor, n_shards=1, max_sessions=4) as runner:
            assert not runner.stats()["resume"]["enabled"]
            client = RemoteMonitorClient(runner.host, runner.port)
            sid = client.open_session("legacy")
            with pytest.raises(ProtocolError, match="no resume state"):
                client.detach_session(sid)

    def test_worker_crash_recovers_transparently(self, monitor):
        """With resume enabled, a SIGKILLed shard worker no longer kills
        its sessions: the gateway replays each journal onto a live
        shard and the client's stream continues, bit-identical."""
        trajectory = make_random_walk_trajectory(
            20, n_features=N_FEATURES, seed=74
        )
        with running_gateway(
            monitor, n_shards=2, max_sessions=16, resume_grace_s=30.0
        ) as runner:
            gateway = runner.gateway
            gateway._engine.frontend.poll_interval_s = 0.05
            service = gateway._engine.service
            with RemoteMonitorClient(runner.host, runner.port) as client:
                sids = [client.open_session(f"proc-{i}") for i in range(6)]
                placement = {sid: service.shard_of(sid) for sid in sids}
                assert len(set(placement.values())) == 2
                collected = {sid: [] for sid in sids}
                for sid in sids:
                    client.feed(sid, trajectory.frames[:12])
                for sid in sids:  # let the backlog fully drain first
                    collected[sid].extend(client.events_for(sid, 12))
                victim_shard = placement[sids[0]]
                process = service._shards[victim_shard].process
                os.kill(process.pid, signal.SIGKILL)
                process.join(10.0)
                assert wait_until(
                    lambda: runner.stats()["resume"]["recovered_total"]
                    >= sum(
                        1 for s in sids if placement[s] == victim_shard
                    )
                )
                for sid in sids:
                    client.feed(sid, trajectory.frames[12:])
                for sid in sids:
                    collected[sid].extend(client.events_for(sid, 8))
                for sid in sids:
                    assert client.close_session(sid)["n_frames"] == 20
            assert not gateway.failed_sessions
            for sid in sids:
                reference = local_events(monitor, trajectory, session_id=sid)
                assert [event_key(e) for e in collected[sid]] == [
                    event_key(e) for e in reference
                ], sid

    def test_async_detach_resume(self, monitor):
        trajectory = make_random_walk_trajectory(
            12, n_features=N_FEATURES, seed=75
        )
        reference = local_events(monitor, trajectory, session_id="a")

        async def run():
            async with MonitorGateway(
                monitor, n_shards=1, max_sessions=4, resume_grace_s=30.0
            ) as gateway:
                first = await AsyncRemoteMonitorClient.connect(
                    gateway.host, gateway.port
                )
                sid = await first.open_session("a")
                await first.feed(sid, trajectory.frames[:7])
                events = []
                for _ in range(7):
                    events.append(
                        await asyncio.wait_for(first.next_event(), 10.0)
                    )
                await first.aclose()
                state = first.detach_session(sid)
                assert state.next_seq == 7

                async def parked():
                    return gateway.n_parked_sessions == 1

                deadline = asyncio.get_running_loop().time() + 10.0
                while not await parked():
                    assert asyncio.get_running_loop().time() < deadline
                    await asyncio.sleep(0.02)
                second = await AsyncRemoteMonitorClient.connect(
                    gateway.host, gateway.port
                )
                try:
                    assert await second.resume_session(state) == sid
                    await second.feed(sid, trajectory.frames[7:])
                    for _ in range(5):
                        events.append(
                            await asyncio.wait_for(second.next_event(), 10.0)
                        )
                    summary = await second.close_session(sid)
                finally:
                    await second.aclose()
                assert summary["n_frames"] == 12
                return events

        events = asyncio.run(run())
        assert [event_key(e) for e in events] == [
            event_key(e) for e in reference
        ]
