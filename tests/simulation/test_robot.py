"""Tests for the Raven II simulator core, schema and task script."""

import numpy as np
import pytest

from repro.config import RAVEN_DEFAULT_SAMPLE_RATE_HZ
from repro.errors import ConfigurationError, ShapeError
from repro.gestures.models import BLOCK_TRANSFER_GESTURES
from repro.simulation import (
    BlockTransferTask,
    PhysicsOutcome,
    RAVEN_STATE_WIDTH,
    RavenSimulator,
    RavenStateLayout,
    VirtualCamera,
    Workspace,
    generate_demonstration,
)
from repro.simulation.teleop import DEFAULT_OPERATORS, OperatorProfile


class TestStateLayout:
    def test_total_width_is_277(self):
        assert RAVEN_STATE_WIDTH == 277

    def test_slices_are_disjoint_and_cover(self):
        layout = RavenStateLayout()
        from repro.simulation.schema import RAVEN_FEATURE_BLOCKS

        covered = np.zeros(RAVEN_STATE_WIDTH, dtype=int)
        for name, _ in RAVEN_FEATURE_BLOCKS:
            covered[layout.slice(name)] += 1
        assert np.all(covered == 1)

    def test_view_is_writable(self):
        layout = RavenStateLayout()
        state = np.zeros((3, RAVEN_STATE_WIDTH))
        layout.view(state, "grasp")[:] = 1.5
        assert state[:, layout.slice("grasp")].tolist() == [[1.5, 1.5]] * 3

    def test_unknown_block_raises(self):
        with pytest.raises(ConfigurationError):
            RavenStateLayout().offset("nonexistent")

    def test_view_rejects_wrong_width(self):
        with pytest.raises(ShapeError):
            RavenStateLayout().view(np.zeros((2, 10)), "pos")

    def test_jigsaws_indices_width(self):
        layout = RavenStateLayout()
        assert layout.jigsaws_indices("left").shape == (19,)
        assert layout.jigsaws_38_indices().shape == (38,)

    def test_jigsaws_grasper_column(self):
        layout = RavenStateLayout()
        idx = layout.jigsaws_indices("right")
        assert idx[-1] == layout.offset("grasp") + 1


class TestBlockTransferTask:
    def test_plan_structure(self):
        ws = Workspace()
        commands = generate_demonstration(
            DEFAULT_OPERATORS[0], workspace=ws, rng=0, sample_rate_hz=50.0
        )
        assert commands.sample_rate_hz == 50.0
        gestures_in_order = [g for g, __, __ in _segments(commands.gestures)]
        assert gestures_in_order == [int(g) for g in BLOCK_TRANSFER_GESTURES]

    def test_grasp_waypoint_reaches_block(self):
        ws = Workspace()
        commands = generate_demonstration(
            DEFAULT_OPERATORS[0], workspace=ws, rng=1, sample_rate_hz=50.0
        )
        arm = commands.transfer_arm
        distances = np.linalg.norm(
            commands.positions[arm] - ws.block.position[None, :], axis=1
        )
        assert distances.min() < 6.0  # within grasp radius

    def test_operator_speed_changes_duration(self):
        ws = Workspace()
        slow = OperatorProfile(name="slow", speed_factor=1.5)
        fast = OperatorProfile(name="fast", speed_factor=0.7)
        n_slow = BlockTransferTask(ws, 50.0).plan(slow, rng=3).n_steps
        n_fast = BlockTransferTask(ws, 50.0).plan(fast, rng=3).n_steps
        assert n_slow > n_fast

    def test_rejects_bad_arm(self):
        with pytest.raises(ConfigurationError):
            BlockTransferTask(Workspace(), transfer_arm="middle")


class TestRavenSimulator:
    def test_fault_free_run_succeeds(self, block_transfer_run):
        __, result = block_transfer_run
        assert result.outcome == PhysicsOutcome.SUCCESS
        assert result.grasp_frame is not None
        assert result.release_frame is not None
        assert result.grasp_frame < result.release_frame

    def test_state_log_width(self, block_transfer_run):
        commands, result = block_transfer_run
        assert result.states.shape == (commands.n_steps, RAVEN_STATE_WIDTH)

    def test_gesture_channel_matches_labels(self, block_transfer_run):
        commands, result = block_transfer_run
        layout = RavenStateLayout()
        channel = layout.view(result.states, "gesture_id")[:, 0]
        assert np.array_equal(channel.astype(int), commands.gestures)

    def test_video_rate(self, block_transfer_run):
        commands, result = block_transfer_run
        assert result.video_frames is not None
        # The camera samples every round(kinematics_rate / 30) steps.
        every = max(1, round(commands.sample_rate_hz / 30.0))
        expected = int(np.ceil(commands.n_steps / every))
        assert result.video_frames.shape[0] == expected
        assert result.video_frame_indices is not None
        assert np.all(np.diff(result.video_frame_indices) == every)

    def test_kinematics_trajectory_features(self, block_transfer_run):
        __, result = block_transfer_run
        traj = result.kinematics_trajectory()
        assert traj.n_features == 38
        assert traj.gestures is not None

    def test_servo_tracks_commands(self, block_transfer_run):
        commands, result = block_transfer_run
        layout = RavenStateLayout()
        actual = layout.view(result.states, "pos")[:, 0:3]
        commanded = commands.positions["left"]
        # After the warm-up, tracking error stays small.
        err = np.linalg.norm(actual[10:] - commanded[10:], axis=1)
        assert err.mean() < 2.0

    def test_rejects_short_commands(self):
        sim = RavenSimulator(camera=None, rng=0)
        commands = generate_demonstration(DEFAULT_OPERATORS[0], rng=0)
        short = commands.copy()
        for arm in ("left", "right"):
            short.positions[arm] = short.positions[arm][:1]
            short.jaw_angles[arm] = short.jaw_angles[arm][:1]
        short.gestures = short.gestures[:1]
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            sim.run(short)


class TestVirtualCamera:
    def test_render_shape_and_range(self):
        ws = Workspace()
        camera = VirtualCamera(ws.extent_mm)
        frame = camera.render(ws)
        assert frame.shape == (48, 64, 3)
        assert frame.min() >= 0.0 and frame.max() <= 1.0

    def test_block_visible(self):
        ws = Workspace()
        camera = VirtualCamera(ws.extent_mm)
        frame = camera.render(ws)
        from repro.vision import threshold_block

        assert threshold_block(frame).sum() > 0

    def test_world_to_pixel_center(self):
        camera = VirtualCamera(100.0)
        row, col = camera.world_to_pixel(np.zeros(3))
        assert abs(row - 24) <= 1 and abs(col - 32) <= 1


def _segments(labels):
    out = []
    start = 0
    for t in range(1, len(labels) + 1):
        if t == len(labels) or labels[t] != labels[start]:
            out.append((int(labels[start]), start, t))
            start = t
    return out
