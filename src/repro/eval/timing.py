"""Timeliness metrics: jitter, reaction time, early-detection percentage.

Semantics follow paper Section IV-C and Figure 8:

- **Jitter** of a gesture detection is ``actual_start - detected_start``
  in frames/ms; positive = the gesture was recognised *early*.
- **Reaction time** of an erroneous-gesture detection is
  ``actual_error_start - first_detected_erroneous_frame``; positive =
  the error was flagged before it began (early detection), negative =
  detection delay.
- **% early detection** is the fraction of erroneous gesture occurrences
  with positive reaction time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import frames_to_ms
from ..errors import ShapeError


@dataclass
class DetectionTiming:
    """Collected timing observations (frames) with ms conversion."""

    values_frames: list[float] = field(default_factory=list)
    frame_rate_hz: float = 30.0

    def add(self, frames: float) -> None:
        """Record one observation (in frames)."""
        self.values_frames.append(float(frames))

    @property
    def n(self) -> int:
        """Number of observations."""
        return len(self.values_frames)

    def mean_frames(self) -> float:
        """Mean in frames (nan when empty)."""
        return float(np.mean(self.values_frames)) if self.values_frames else float("nan")

    def mean_ms(self) -> float:
        """Mean in milliseconds (nan when empty)."""
        return frames_to_ms(self.mean_frames(), self.frame_rate_hz)

    def std_ms(self) -> float:
        """Standard deviation in milliseconds (nan when empty)."""
        if not self.values_frames:
            return float("nan")
        return frames_to_ms(float(np.std(self.values_frames)), self.frame_rate_hz)


def _segments(labels: np.ndarray) -> list[tuple[int, int, int]]:
    """Contiguous runs of equal values as (value, start, end_exclusive)."""
    labels = np.asarray(labels)
    if labels.ndim != 1 or labels.size == 0:
        raise ShapeError("labels must be a non-empty 1-D array")
    out = []
    start = 0
    for t in range(1, labels.size + 1):
        if t == labels.size or labels[t] != labels[start]:
            out.append((int(labels[start]), start, t))
            start = t
    return out


def gesture_jitter(
    true_gestures: np.ndarray,
    predicted_gestures: np.ndarray,
    restrict_to: np.ndarray | None = None,
) -> dict[int, list[float]]:
    """Per-gesture jitter samples (frames) over one demonstration.

    For every true gesture occurrence starting at frame ``s``, the
    detection time is the first frame ``>= s - lookback`` at which the
    predictor outputs that gesture and keeps it for at least 2 frames
    (debouncing transient flickers); jitter = ``s - detected``.
    Occurrences never detected are skipped.

    ``restrict_to`` optionally masks which occurrences to include (same
    length as the label arrays; an occurrence counts when any of its
    frames is masked true) — used for "jitter on erroneous gestures".
    """
    true_gestures = np.asarray(true_gestures).astype(int)
    predicted_gestures = np.asarray(predicted_gestures).astype(int)
    if true_gestures.shape != predicted_gestures.shape:
        raise ShapeError("label arrays must have equal shape")
    n = true_gestures.size
    out: dict[int, list[float]] = {}
    for value, start, end in _segments(true_gestures):
        if restrict_to is not None and not np.asarray(restrict_to)[start:end].any():
            continue
        lookback = max(0, start - (end - start))
        window = predicted_gestures[lookback : min(end, n)]
        hits = np.flatnonzero(window == value)
        detected = None
        for h in hits:
            absolute = lookback + h
            run_end = min(absolute + 2, n)
            if (predicted_gestures[absolute:run_end] == value).all():
                detected = absolute
                break
        if detected is None:
            continue
        out.setdefault(value, []).append(float(start - detected))
    return out


def reaction_times(
    true_unsafe: np.ndarray,
    predicted_unsafe: np.ndarray,
    true_gestures: np.ndarray | None = None,
) -> list[tuple[int | None, float]]:
    """Reaction time per erroneous occurrence (Equation 4).

    For every contiguous true-unsafe segment starting at frame ``s``, the
    detection frame is the first predicted-unsafe frame at or after the
    *previous* segment boundary (allowing early detection); reaction =
    ``s - detected`` (positive = early).  Undetected occurrences are
    skipped.  Returns ``(gesture_number | None, reaction_frames)`` pairs.
    """
    true_unsafe = np.asarray(true_unsafe).astype(int)
    predicted_unsafe = np.asarray(predicted_unsafe).astype(int)
    if true_unsafe.shape != predicted_unsafe.shape:
        raise ShapeError("label arrays must have equal shape")
    out: list[tuple[int | None, float]] = []
    prev_end = 0
    for value, start, end in _segments(true_unsafe):
        if value != 1:
            prev_end = max(prev_end, start)
            continue
        search_from = prev_end
        hits = np.flatnonzero(predicted_unsafe[search_from:end])
        if hits.size:
            detected = search_from + int(hits[0])
            gesture = (
                int(np.asarray(true_gestures)[start])
                if true_gestures is not None
                else None
            )
            out.append((gesture, float(start - detected)))
        prev_end = end
    return out


def early_detection_percentage(reactions: list[tuple[int | None, float]]) -> float:
    """Fraction (percent) of reactions that are strictly positive."""
    if not reactions:
        return float("nan")
    early = sum(1 for _, r in reactions if r > 0)
    return 100.0 * early / len(reactions)
