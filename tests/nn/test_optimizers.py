"""Tests for repro.nn.optimizers and schedules."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nn.optimizers import SGD, Adam
from repro.nn.schedules import ConstantSchedule, StepDecay


def quadratic_descent(optimizer, steps=300):
    """Minimise f(w) = ||w - target||^2 and return the final w."""
    target = np.array([1.5, -2.0, 0.5])
    w = np.zeros(3)
    for _ in range(steps):
        grad = 2.0 * (w - target)
        optimizer.step([w], [grad])
    return w, target


class TestSGD:
    def test_converges_on_quadratic(self):
        w, target = quadratic_descent(SGD(learning_rate=0.1))
        assert np.allclose(w, target, atol=1e-4)

    def test_momentum_converges(self):
        w, target = quadratic_descent(SGD(learning_rate=0.05, momentum=0.9))
        assert np.allclose(w, target, atol=1e-3)

    def test_rejects_bad_momentum(self):
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        w, target = quadratic_descent(Adam(learning_rate=0.05), steps=800)
        assert np.allclose(w, target, atol=1e-3)

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, the first Adam step is ~lr in each coord.
        opt = Adam(learning_rate=0.1, clip_norm=None)
        w = np.zeros(2)
        opt.step([w], [np.array([1.0, -3.0])])
        assert np.allclose(np.abs(w), 0.1, atol=1e-6)

    def test_clip_norm_limits_update(self):
        clipped = Adam(learning_rate=0.1, clip_norm=1e-9)
        w = np.zeros(2)
        clipped.step([w], [np.array([100.0, 100.0])])
        # The clipped gradient is tiny relative to epsilon, so the update
        # stays well below the nominal learning-rate step.
        assert np.all(np.abs(w) < 0.1)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            Adam(learning_rate=-1.0)
        with pytest.raises(ConfigurationError):
            Adam(beta1=1.0)
        with pytest.raises(ConfigurationError):
            Adam(clip_norm=0.0)


class TestSchedules:
    def test_constant(self):
        schedule = ConstantSchedule(0.01)
        assert schedule.rate_for_epoch(0) == 0.01
        assert schedule.rate_for_epoch(100) == 0.01

    def test_step_decay(self):
        schedule = StepDecay(0.1, factor=0.5, every=10)
        assert schedule.rate_for_epoch(0) == pytest.approx(0.1)
        assert schedule.rate_for_epoch(9) == pytest.approx(0.1)
        assert schedule.rate_for_epoch(10) == pytest.approx(0.05)
        assert schedule.rate_for_epoch(25) == pytest.approx(0.025)

    def test_min_rate_floor(self):
        schedule = StepDecay(0.1, factor=0.1, every=1, min_rate=0.01)
        assert schedule.rate_for_epoch(50) == pytest.approx(0.01)

    def test_rejects_negative_epoch(self):
        with pytest.raises(ConfigurationError):
            ConstantSchedule(0.1).rate_for_epoch(-1)
