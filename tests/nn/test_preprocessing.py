"""Tests for repro.nn.preprocessing and serialization."""

import numpy as np
import pytest

from repro import nn
from repro.errors import NotFittedError, ShapeError
from repro.nn.serialization import load_model, save_model


class TestStandardScaler:
    def test_transform_standardises(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((500, 3)) * np.array([5.0, 0.1, 2.0]) + 7.0
        scaler = nn.StandardScaler()
        out = scaler.fit_transform(x)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_3d_windows(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((50, 5, 2)) + 3.0
        scaler = nn.StandardScaler()
        out = scaler.fit_transform(x)
        assert out.shape == x.shape
        assert abs(out.mean()) < 1e-9

    def test_constant_feature_not_scaled(self):
        x = np.ones((10, 2))
        x[:, 1] = np.arange(10)
        out = nn.StandardScaler().fit_transform(x)
        assert np.allclose(out[:, 0], 0.0)
        assert np.isfinite(out).all()

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((20, 4)) * 3 + 1
        scaler = nn.StandardScaler().fit(x)
        assert np.allclose(scaler.inverse_transform(scaler.transform(x)), x)

    def test_requires_fit(self):
        with pytest.raises(NotFittedError):
            nn.StandardScaler().transform(np.zeros((2, 2)))

    def test_rejects_feature_mismatch(self):
        scaler = nn.StandardScaler().fit(np.zeros((4, 3)))
        with pytest.raises(ShapeError):
            scaler.transform(np.zeros((4, 2)))


class TestOneHot:
    def test_basic(self):
        out = nn.one_hot(np.array([0, 2, 1]), 3)
        assert np.array_equal(out, np.eye(3)[[0, 2, 1]])

    def test_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            nn.one_hot(np.array([3]), 3)


class TestTrainValSplit:
    def test_sizes(self):
        x = np.arange(100).reshape(100, 1)
        y = np.arange(100) % 2
        x_tr, y_tr, x_val, y_val = nn.train_val_split(x, y, 0.2, rng=0)
        assert x_val.shape[0] == 20
        assert x_tr.shape[0] == 80
        assert set(x_tr[:, 0]) | set(x_val[:, 0]) == set(range(100))

    def test_stratified_keeps_minority(self):
        y = np.zeros(100, dtype=int)
        y[:5] = 1  # 5% minority
        x = np.arange(100).reshape(100, 1)
        __, y_tr, __, y_val = nn.train_val_split(x, y, 0.2, rng=0, stratify=True)
        assert (y_val == 1).sum() >= 1
        assert (y_tr == 1).sum() >= 1

    def test_rejects_bad_fraction(self):
        with pytest.raises(ShapeError):
            nn.train_val_split(np.zeros((4, 1)), np.zeros(4), 0.0)


class TestSerialization:
    def test_round_trip_predictions(self, tmp_path):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((20, 6, 3))
        model = nn.Sequential(
            [
                nn.Conv1D(4, 3),
                nn.ReLU(),
                nn.BatchNorm(),
                nn.GlobalAveragePool1D(),
                nn.Dense(2),
            ],
            seed=0,
        )
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        model.fit(x, (x[:, :, 0].mean(axis=1) > 0).astype(int), epochs=2)
        path = tmp_path / "model.npz"
        save_model(model, path)
        loaded = load_model(path)
        loaded.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        assert np.allclose(loaded.predict_proba(x), model.predict_proba(x))

    def test_lstm_round_trip(self, tmp_path):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 5, 2))
        model = nn.Sequential([nn.LSTM(4), nn.Dense(1)], seed=0)
        model.compile(nn.SigmoidBinaryCrossEntropy(), nn.Adam(1e-2))
        model.build((5, 2))
        path = tmp_path / "lstm.npz"
        save_model(model, path)
        loaded = load_model(path)
        loaded.compile(nn.SigmoidBinaryCrossEntropy(), nn.Adam(1e-2))
        assert np.allclose(loaded.predict_proba(x), model.predict_proba(x))

    def test_unbuilt_model_rejected(self, tmp_path):
        model = nn.Sequential([nn.Dense(2)])
        with pytest.raises(NotFittedError):
            save_model(model, tmp_path / "x.npz")

    def test_bytes_round_trip_matches_file_round_trip(self, tmp_path):
        """save_model_bytes produces the same archive as save_model, and
        load_model_bytes restores identical predictions."""
        rng = np.random.default_rng(2)
        x = rng.standard_normal((10, 5, 3))
        model = nn.Sequential([nn.Conv1D(4, 3), nn.Flatten(), nn.Dense(2)], seed=0)
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        model.build((5, 3))
        blob = nn.save_model_bytes(model)
        path = tmp_path / "model.npz"
        save_model(model, path)
        assert blob == path.read_bytes()
        loaded = nn.load_model_bytes(blob)
        loaded.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        assert np.array_equal(loaded.predict_proba(x), model.predict_proba(x))

    def test_unbuilt_model_rejected_for_bytes(self):
        with pytest.raises(NotFittedError):
            nn.save_model_bytes(nn.Sequential([nn.Dense(2)]))

    def test_failed_save_leaves_existing_checkpoint_intact(self, tmp_path):
        """Saving an unbuilt model must raise without truncating a good
        checkpoint already at the destination path."""
        model = nn.Sequential([nn.Dense(2)], seed=0)
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        model.build((3,))
        path = tmp_path / "model.npz"
        save_model(model, path)
        good_bytes = path.read_bytes()
        with pytest.raises(NotFittedError):
            save_model(nn.Sequential([nn.Dense(2)]), path)
        assert path.read_bytes() == good_bytes
        load_model(path)

    def test_suffixless_path_gets_npz_appended(self, tmp_path):
        """np.savez's suffix behaviour is preserved: a path without .npz
        writes <path>.npz."""
        model = nn.Sequential([nn.Dense(2)], seed=0)
        model.compile(nn.SoftmaxCrossEntropy(), nn.Adam(1e-2))
        model.build((3,))
        save_model(model, tmp_path / "checkpoint")
        assert (tmp_path / "checkpoint.npz").exists()
        assert not (tmp_path / "checkpoint").exists()
        load_model(tmp_path / "checkpoint.npz")
