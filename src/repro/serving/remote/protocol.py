"""The remote-ingest wire protocol: compact length-prefixed binary frames.

Kinematics reach the gateway over a TCP byte stream, so every exchange
is framed as one *message*: an 8-byte struct-packed header followed by a
payload.  The header is

====== ======= ========================================================
offset format  field
====== ======= ========================================================
0      ``B``   protocol version (:data:`PROTOCOL_VERSION`)
1      ``B``   message type (:class:`MessageType`)
2      ``H``   reserved (must be 0; room for flags without a version bump)
4      ``I``   payload length in bytes
====== ======= ========================================================

all big-endian (``!``).  Payloads are either UTF-8 JSON (control
messages: OPEN, CLOSE, ERROR, STATS, RESUME) or packed binary (the hot
path: FRAME carries little-endian float64 kinematics rows prefixed by
the batch's starting frame sequence number, EVENT carries packed
:class:`~repro.serving.service.SessionEvent` records, ACK carries the
gateway's per-session accepted-frame count), so a frame of 38 features
costs 8 + 2 + len(sid) + 8 + 8 + 304 bytes on the wire and decoding is
one ``np.frombuffer`` — no per-frame JSON.

Message types and their direction:

=========== ============== ==============================================
type        direction      payload
=========== ============== ==============================================
OPEN        client→gateway ``{"session_id": str|null, "record_timeline"}``
OPEN        gateway→client ack: ``{"session_id": str, "resume_token"}``
FRAME       client→gateway :func:`encode_frames` binary (seq-numbered)
CLOSE       client→gateway ``{"session_id": str}``
CLOSE       gateway→client ack: ``{"session_id", "n_frames", "n_flagged"}``
EVENT       gateway→client :func:`encode_events` binary batch
ERROR       gateway→client ``{"error_type", "error", "session_id"|null}``
HEARTBEAT   both           empty (gateway pings, client echoes)
STATS       client→gateway empty request
STATS       gateway→client ``gateway_stats()`` JSON
ACK         gateway→client :func:`encode_ack` binary — frames accepted
RESUME      client→gateway ``{"session_id", "token", "last_event"}``
RESUME      gateway→client ack: ``{"session_id", "acked_seq", "delivered"}``
=========== ============== ==============================================

Version 2 added the session-resume triplet: a ``!Q`` frame sequence
number inside every FRAME payload, the ACK message acknowledging the
frames the gateway has accepted (durably, while resume is enabled), and
RESUME, by which a reconnecting client presents its resume token and
replays any frames past the gateway's acked seq.  Version 1 peers are
rejected by :func:`decode_header` exactly like any other foreign
version — there is no downgrade path on one port.

Everything here is transport-agnostic — pure ``struct``/``json``/numpy,
no sockets and no asyncio — so the gateway, both client SDKs and the
test suite share one codec.  Malformed input raises
:class:`~repro.errors.ProtocolError`, never a bare ``struct.error``.
See ``docs/remote.md`` for the full specification.
"""

from __future__ import annotations

import enum
import json
import struct

import numpy as np

from ...errors import ProtocolError
from ..service import SessionEvent

__all__ = [
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "MessageReader",
    "MessageType",
    "PROTOCOL_VERSION",
    "decode_ack",
    "decode_events",
    "decode_frames",
    "decode_header",
    "decode_json",
    "encode_ack",
    "encode_events",
    "encode_frames",
    "encode_json",
    "encode_message",
]

#: Bumped on any incompatible header or payload layout change; peers
#: reject other versions with :class:`~repro.errors.ProtocolError`.
#: Version 2: FRAME payloads carry a sequence number, ACK/RESUME added.
PROTOCOL_VERSION = 2

#: Hard ceiling on one message's payload (64 MiB) — a corrupt or hostile
#: length field must not make a peer allocate unbounded memory.
MAX_PAYLOAD = 64 * 1024 * 1024

_HEADER = struct.Struct("!BBHI")

#: Wire size of the fixed message header in bytes.
HEADER_SIZE = _HEADER.size

_SID_LEN = struct.Struct("!H")
_FRAME_SEQ = struct.Struct("!Q")
_FRAME_DIMS = struct.Struct("!II")
_EVENT_COUNT = struct.Struct("!I")
_EVENT_FIXED = struct.Struct("!qidBH")  # frame_index, gesture, score, flag, err_len


class MessageType(enum.IntEnum):
    """The nine wire message types (one byte each on the wire)."""

    OPEN = 1
    FRAME = 2
    CLOSE = 3
    EVENT = 4
    ERROR = 5
    HEARTBEAT = 6
    STATS = 7
    ACK = 8
    RESUME = 9


def encode_message(msg_type: MessageType, payload: bytes = b"") -> bytes:
    """One complete wire message: header + payload."""
    if len(payload) > MAX_PAYLOAD:
        raise ProtocolError(
            f"payload of {len(payload)} bytes exceeds the {MAX_PAYLOAD}-byte cap"
        )
    return _HEADER.pack(
        PROTOCOL_VERSION, int(msg_type), 0, len(payload)
    ) + payload


def decode_header(data: bytes) -> tuple[MessageType, int]:
    """Parse one 8-byte header into ``(message type, payload length)``.

    Rejects short buffers, foreign protocol versions, unknown message
    types and payload lengths past :data:`MAX_PAYLOAD` — all as
    :class:`~repro.errors.ProtocolError`, so a desynchronised or hostile
    byte stream fails loudly instead of being misparsed.
    """
    if len(data) < HEADER_SIZE:
        raise ProtocolError(
            f"truncated header: {len(data)} of {HEADER_SIZE} bytes"
        )
    version, raw_type, reserved, length = _HEADER.unpack_from(data)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version} "
            f"(this peer speaks {PROTOCOL_VERSION})"
        )
    if reserved != 0:
        raise ProtocolError(f"reserved header field must be 0, got {reserved}")
    try:
        msg_type = MessageType(raw_type)
    except ValueError:
        raise ProtocolError(f"unknown message type {raw_type}") from None
    if length > MAX_PAYLOAD:
        raise ProtocolError(
            f"declared payload of {length} bytes exceeds the "
            f"{MAX_PAYLOAD}-byte cap"
        )
    return msg_type, length


class MessageReader:
    """Incremental decoder over an arbitrary byte-chunk stream.

    Feed it whatever the transport hands you — partial headers, many
    messages at once — and pop complete ``(type, payload)`` messages as
    they become available.  The sync client SDK and the protocol tests
    run on this; the asyncio side uses ``readexactly`` directly.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> None:
        """Append raw bytes received from the transport."""
        self._buffer.extend(data)

    @property
    def buffered(self) -> int:
        """Bytes currently held, complete or not."""
        return len(self._buffer)

    def next_message(self) -> tuple[MessageType, bytes] | None:
        """Pop one complete message, or ``None`` until more bytes arrive."""
        if len(self._buffer) < HEADER_SIZE:
            return None
        msg_type, length = decode_header(bytes(self._buffer[:HEADER_SIZE]))
        end = HEADER_SIZE + length
        if len(self._buffer) < end:
            return None
        payload = bytes(self._buffer[HEADER_SIZE:end])
        del self._buffer[:end]
        return msg_type, payload

    def messages(self):
        """Iterate every currently complete message."""
        while True:
            message = self.next_message()
            if message is None:
                return
            yield message


# ----------------------------------------------------------------------
# JSON payloads (control plane)
# ----------------------------------------------------------------------
def encode_json(obj: dict) -> bytes:
    """Encode a control-message payload as compact UTF-8 JSON."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8")


def decode_json(payload: bytes) -> dict:
    """Decode a control-message payload; must be a JSON object."""
    try:
        obj = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed JSON payload: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"control payload must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ----------------------------------------------------------------------
# Binary payloads (data plane)
# ----------------------------------------------------------------------
def _pack_sid(session_id: str) -> bytes:
    sid = session_id.encode("utf-8")
    if len(sid) > 0xFFFF:
        raise ProtocolError(f"session id of {len(sid)} bytes is too long")
    return _SID_LEN.pack(len(sid)) + sid


def _unpack_sid(payload: bytes, offset: int, what: str) -> tuple[str, int]:
    if len(payload) < offset + _SID_LEN.size:
        raise ProtocolError(f"truncated {what} payload (session id length)")
    (sid_len,) = _SID_LEN.unpack_from(payload, offset)
    offset += _SID_LEN.size
    if len(payload) < offset + sid_len:
        raise ProtocolError(f"truncated {what} payload (session id)")
    try:
        sid = payload[offset : offset + sid_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise ProtocolError(f"{what} session id is not valid UTF-8") from exc
    return sid, offset + sid_len


def encode_frames(session_id: str, frames: np.ndarray, seq: int = 0) -> bytes:
    """Pack kinematics rows for one session into a FRAME payload.

    ``frames`` is coerced to a C-contiguous little-endian float64
    ``(n, n_features)`` matrix (a single ``(n_features,)`` frame is
    promoted), exactly the dtype the serving engine consumes — the
    gateway feeds the decoded buffer straight in, no per-row copies.
    ``seq`` is the frame sequence number of the batch's **first** row:
    the count of frames the client sent for this session before it.
    The gateway uses it to deduplicate resume replays and to detect
    gaps; a v2 client must number every batch contiguously.
    """
    frames = np.ascontiguousarray(frames, dtype="<f8")
    if frames.ndim == 1:
        frames = frames[None, :]
    if frames.ndim != 2:
        raise ProtocolError(
            f"frames must be (n, n_features), got shape {frames.shape}"
        )
    if not 0 <= seq <= 0xFFFFFFFFFFFFFFFF:
        raise ProtocolError(f"frame seq {seq} out of the u64 range")
    return (
        _pack_sid(session_id)
        + _FRAME_SEQ.pack(seq)
        + _FRAME_DIMS.pack(frames.shape[0], frames.shape[1])
        + frames.tobytes()
    )


def decode_frames(payload: bytes) -> tuple[str, int, np.ndarray]:
    """Unpack a FRAME payload into ``(sid, seq, (n, n_features) float64)``."""
    sid, offset = _unpack_sid(payload, 0, "FRAME")
    if len(payload) < offset + _FRAME_SEQ.size:
        raise ProtocolError("truncated FRAME payload (sequence number)")
    (seq,) = _FRAME_SEQ.unpack_from(payload, offset)
    offset += _FRAME_SEQ.size
    if len(payload) < offset + _FRAME_DIMS.size:
        raise ProtocolError("truncated FRAME payload (dimensions)")
    n_rows, n_cols = _FRAME_DIMS.unpack_from(payload, offset)
    offset += _FRAME_DIMS.size
    expected = n_rows * n_cols * 8
    body = payload[offset:]
    if len(body) != expected:
        raise ProtocolError(
            f"FRAME payload declares {n_rows}x{n_cols} float64 "
            f"({expected} bytes) but carries {len(body)}"
        )
    frames = np.frombuffer(body, dtype="<f8").reshape(n_rows, n_cols)
    # A writable native-endian copy: the engine appends it to the
    # session's pending queue and reads rows out of it over many ticks.
    return sid, seq, frames.astype(np.float64)


def encode_ack(session_id: str, seq: int) -> bytes:
    """Pack an ACK payload: ``seq`` frames of a session are accepted.

    ``seq`` is a *count*, not an index — after the gateway ingests a
    batch ending at frame ``k-1`` it acks ``seq=k``.  While resume is
    enabled on the gateway, an acked frame survives both a client
    disconnect (parked session state) and a shard worker crash (journal
    replay), so the client may discard its replay copy of every frame
    below ``seq``.
    """
    if not 0 <= seq <= 0xFFFFFFFFFFFFFFFF:
        raise ProtocolError(f"ack seq {seq} out of the u64 range")
    return _pack_sid(session_id) + _FRAME_SEQ.pack(seq)


def decode_ack(payload: bytes) -> tuple[str, int]:
    """Unpack an ACK payload into ``(session id, accepted frame count)``."""
    sid, offset = _unpack_sid(payload, 0, "ACK")
    if len(payload) < offset + _FRAME_SEQ.size:
        raise ProtocolError("truncated ACK payload (sequence number)")
    (seq,) = _FRAME_SEQ.unpack_from(payload, offset)
    offset += _FRAME_SEQ.size
    if offset != len(payload):
        raise ProtocolError(
            f"ACK payload has {len(payload) - offset} trailing bytes"
        )
    return sid, seq


def encode_events(events: list[SessionEvent]) -> bytes:
    """Pack a batch of session events into one EVENT payload."""
    parts = [_EVENT_COUNT.pack(len(events))]
    for event in events:
        error = (event.error or "").encode("utf-8")
        if len(error) > 0xFFFF:
            error = error[:0xFFFF]
        parts.append(_pack_sid(event.session_id))
        parts.append(
            _EVENT_FIXED.pack(
                event.frame_index,
                event.gesture,
                event.score,
                bool(event.flag),
                len(error),
            )
        )
        parts.append(error)
    return b"".join(parts)


def decode_events(payload: bytes) -> list[SessionEvent]:
    """Unpack an EVENT payload into :class:`SessionEvent` objects."""
    if len(payload) < _EVENT_COUNT.size:
        raise ProtocolError("truncated EVENT payload (count)")
    (count,) = _EVENT_COUNT.unpack_from(payload)
    offset = _EVENT_COUNT.size
    events: list[SessionEvent] = []
    for _ in range(count):
        sid, offset = _unpack_sid(payload, offset, "EVENT")
        if len(payload) < offset + _EVENT_FIXED.size:
            raise ProtocolError("truncated EVENT payload (record)")
        frame_index, gesture, score, flag, err_len = _EVENT_FIXED.unpack_from(
            payload, offset
        )
        offset += _EVENT_FIXED.size
        if len(payload) < offset + err_len:
            raise ProtocolError("truncated EVENT payload (error text)")
        error = (
            payload[offset : offset + err_len].decode("utf-8", "replace")
            if err_len
            else None
        )
        offset += err_len
        events.append(
            SessionEvent(
                session_id=sid,
                frame_index=frame_index,
                gesture=gesture,
                score=score,
                flag=bool(flag),
                error=error,
            )
        )
    if offset != len(payload):
        raise ProtocolError(
            f"EVENT payload has {len(payload) - offset} trailing bytes"
        )
    return events
