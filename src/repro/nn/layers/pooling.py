"""Pooling and reshaping layers for 1-D CNNs."""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError, ShapeError
from .base import Layer


class MaxPool1D(Layer):
    """Non-overlapping max pooling along the time axis.

    Input ``(batch, time, channels)``; time steps not filling a complete
    pool window are dropped (Keras ``"valid"`` behaviour).
    """

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ConfigurationError("pool_size must be >= 1")
        self.pool_size = int(pool_size)
        self._cache: dict[str, np.ndarray] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        del rng
        if len(input_shape) != 2:
            raise ShapeError(
                f"MaxPool1D expects (time, channels) input shape, got {input_shape}"
            )
        time_steps, channels = input_shape
        out_time = time_steps // self.pool_size
        if out_time < 1:
            raise ConfigurationError(
                f"pool_size {self.pool_size} larger than input length {time_steps}"
            )
        self._input_shape = tuple(input_shape)
        self._output_shape = (out_time, channels)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        x = self._require_ndim(x, 3, "MaxPool1D input")
        batch, time_steps, channels = x.shape
        out_time = time_steps // self.pool_size
        trimmed = x[:, : out_time * self.pool_size, :]
        blocks = trimmed.reshape(batch, out_time, self.pool_size, channels)
        out = blocks.max(axis=2)
        if training:
            mask = blocks == out[:, :, None, :]
            # Break ties: keep only the first max within each pool window.
            first = np.cumsum(mask, axis=2) == 1
            self._cache = {
                "mask": mask & first,
                "x_shape": np.array(x.shape),
            }
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_built()
        if self._cache is None:
            raise RuntimeError("backward called before a training forward pass")
        mask = self._cache["mask"]
        batch, time_steps, channels = (int(v) for v in self._cache["x_shape"])
        out_time = mask.shape[1]
        grad_output = np.asarray(grad_output, dtype=float)
        if grad_output.shape != (batch, out_time, channels):
            raise ShapeError(
                f"grad_output shape {grad_output.shape} does not match "
                f"({batch}, {out_time}, {channels})"
            )
        d_blocks = mask * grad_output[:, :, None, :]
        grad_input = np.zeros((batch, time_steps, channels))
        grad_input[:, : out_time * self.pool_size, :] = d_blocks.reshape(
            batch, out_time * self.pool_size, channels
        )
        self._cache = None
        return grad_input

    def get_config(self) -> dict:
        return {"pool_size": self.pool_size}


class GlobalAveragePool1D(Layer):
    """Mean over the time axis: ``(batch, time, channels) -> (batch, channels)``."""

    def __init__(self) -> None:
        super().__init__()
        self._time_steps: int | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        del rng
        if len(input_shape) != 2:
            raise ShapeError(
                "GlobalAveragePool1D expects (time, channels) input shape, "
                f"got {input_shape}"
            )
        self._input_shape = tuple(input_shape)
        self._output_shape = (input_shape[1],)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        x = self._require_ndim(x, 3, "GlobalAveragePool1D input")
        if training:
            self._time_steps = x.shape[1]
        return x.mean(axis=1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_built()
        if self._time_steps is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_output = np.asarray(grad_output, dtype=float)
        grad_input = np.repeat(
            grad_output[:, None, :] / self._time_steps, self._time_steps, axis=1
        )
        self._time_steps = None
        return grad_input


class Flatten(Layer):
    """Collapse all non-batch axes: ``(batch, *dims) -> (batch, prod(dims))``."""

    def __init__(self) -> None:
        super().__init__()
        self._forward_shape: tuple[int, ...] | None = None

    def build(self, input_shape: tuple[int, ...], rng: np.random.Generator) -> None:
        del rng
        self._input_shape = tuple(input_shape)
        self._output_shape = (int(np.prod(input_shape)),)
        self.built = True

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._check_built()
        x = np.asarray(x, dtype=float)
        if training:
            self._forward_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        self._check_built()
        if self._forward_shape is None:
            raise RuntimeError("backward called before a training forward pass")
        grad_input = np.asarray(grad_output, dtype=float).reshape(self._forward_shape)
        self._forward_shape = None
        return grad_input
