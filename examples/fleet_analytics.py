"""Fleet analytics: a campaign through the durable event store.

Runs a sharded fleet of procedure sessions with an
:class:`repro.serving.EventStoreWriter` teed in — including a
mid-stream live resize, which lands in the log as a fleet marker —
then turns the replayable on-disk record into the operator's
after-the-fact view (``docs/observability.md``): a per-gesture unsafe
error-rate table, the alert-latency distribution (frame ingest →
event emission, exact percentiles from the stored samples plus the
live telemetry histogram), fail-safe accounting, and JSON/CSV exports
of the whole campaign.

The monitor uses deterministic synthetic weights so the demo starts
instantly; the store replays every event bit-identically to what the
fleet emitted, so the analytics are computed from the log alone —
nothing here re-touches the live service.

Run:  PYTHONPATH=src python examples/fleet_analytics.py [--shards 3]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro.serving import (
    EventStoreReader,
    EventStoreWriter,
    ShardedMonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)
from repro.serving.analytics import (
    alert_latency_summary,
    error_rates_by_gesture,
    export_events_csv,
    export_report_json,
    failsafe_summary,
)

N_FEATURES = 38


def run_campaign(store_dir: Path, args) -> None:
    monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
    store = EventStoreWriter(store_dir, fsync="rotate")
    print(
        f"Driving {args.procedures} procedures over {args.shards} shards, "
        f"teeing every event into {store_dir} ..."
    )
    with ShardedMonitorService(
        monitor,
        n_shards=args.shards,
        max_sessions_per_shard=args.procedures,
        event_store=store,
    ) as service:
        for i in range(args.procedures):
            sid = service.open_session(f"OR-{i + 1:02d}")
            trajectory = make_random_walk_trajectory(
                args.frames, n_features=N_FEATURES, seed=100 + i
            )
            service.feed(sid, trajectory.frames[: args.frames // 2])
        service.drain()
        # Live-resize mid-campaign: sessions migrate, the log gets a
        # {"type": "resize"} marker.
        service.resize(args.shards + 1)
        for i in range(args.procedures):
            trajectory = make_random_walk_trajectory(
                args.frames, n_features=N_FEATURES, seed=100 + i
            )
            service.feed(
                f"OR-{i + 1:02d}", trajectory.frames[args.frames // 2 :]
            )
        service.drain()
        for i in range(args.procedures):
            service.close_session(f"OR-{i + 1:02d}")
        telemetry = service.telemetry_snapshot()
    store.close()
    print(
        f"store: {store.stats()['appended']} records appended, "
        f"{store.stats()['segments']} segment(s), "
        f"{store.stats()['bytes_written'] / 1024:.0f} KiB, "
        f"{store.stats()['dropped']} dropped"
    )
    hist = telemetry["histograms"]["alert_latency_us"]
    print(
        f"live telemetry: {telemetry['counters']['events_emitted']} events, "
        f"bucketed latency p50 ~{hist['p50']:.0f} us, p99 ~{hist['p99']:.0f} us"
    )


def print_analytics(store_dir: Path) -> None:
    reader = EventStoreReader(store_dir)

    print("\nPer-gesture unsafe error rates (from the on-disk log):")
    print(f"  {'gesture':>8} {'events':>8} {'flagged':>8} {'rate':>7}")
    for gesture, row in error_rates_by_gesture(reader).items():
        bar = "#" * int(row["rate"] * 40)
        print(
            f"  G{gesture:>7} {row['events']:>8} {row['flagged']:>8} "
            f"{row['rate']:>6.1%}  {bar}"
        )

    latency = alert_latency_summary(reader)
    print(
        f"\nAlert latency (exact, {latency['count']} samples): "
        f"mean {latency['mean_us']:.0f} us, p50 {latency['p50_us']:.0f} us, "
        f"p90 {latency['p90_us']:.0f} us, p99 {latency['p99_us']:.0f} us"
    )

    failsafe = failsafe_summary(reader)
    print(
        f"Fail-safe events: {failsafe['events']} "
        f"across {failsafe['sessions']} session(s)"
    )
    markers = [m for m in reader.iter_markers() if m["type"] == "resize"]
    for marker in markers:
        print(
            f"Fleet marker: resize {marker.get('from')} -> {marker.get('to')} "
            f"(migrated {marker.get('migrated')})"
        )

    report_path = store_dir.parent / "fleet_report.json"
    csv_path = store_dir.parent / "events.csv"
    export_report_json(reader, report_path)
    n_rows = export_events_csv(reader, csv_path)
    print(f"\nExported {report_path} and {csv_path} ({n_rows} rows)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--procedures", type=int, default=12)
    parser.add_argument("--frames", type=int, default=200)
    parser.add_argument(
        "--store",
        default=None,
        help="event store directory (default: a fresh temp dir)",
    )
    args = parser.parse_args()
    if min(args.shards, args.procedures, args.frames) < 1:
        parser.error("--shards/--procedures/--frames must all be >= 1")

    base = Path(args.store) if args.store else Path(tempfile.mkdtemp()) / "log"
    run_campaign(base, args)
    print_analytics(base)


if __name__ == "__main__":
    main()
