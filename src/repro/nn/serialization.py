"""Model persistence as ``.npz`` archives (no pickling of code).

The archive stores, per layer: the class name, its ``get_config()``
key/values and its parameter arrays, plus the model input shape — enough
to rebuild the architecture and restore weights exactly.

Two surfaces are exposed: file-based :func:`save_model` /
:func:`load_model` for checkpoints on disk, and bytes-based
:func:`save_model_bytes` / :func:`load_model_bytes` for shipping a model
across a process boundary (the sharded serving layer bootstraps every
worker process from one in-memory snapshot, see
:mod:`repro.serving.snapshot`).  Both pairs produce the same archive
format.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

from ..errors import ConfigurationError, NotFittedError
from .layers import (
    BatchNorm,
    Conv1D,
    Dense,
    Dropout,
    Flatten,
    GlobalAveragePool1D,
    LSTM,
    MaxPool1D,
    ReLU,
    Sigmoid,
    Tanh,
)
from .model import Sequential

_LAYER_REGISTRY = {
    cls.__name__: cls
    for cls in (
        BatchNorm,
        Conv1D,
        Dense,
        Dropout,
        Flatten,
        GlobalAveragePool1D,
        LSTM,
        MaxPool1D,
        ReLU,
        Sigmoid,
        Tanh,
    )
}


def save_model(model: Sequential, path: str | Path) -> None:
    """Serialise a built :class:`Sequential` model to ``path`` (.npz).

    As with :func:`numpy.savez`, a ``.npz`` suffix is appended when
    ``path`` does not already end in one.  The archive is built in
    memory first, so a failed save (e.g. an unbuilt model) never
    truncates an existing checkpoint at ``path``.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    data = save_model_bytes(model)
    path.write_bytes(data)


def save_model_bytes(model: Sequential) -> bytes:
    """Serialise a built :class:`Sequential` model to an in-memory archive.

    The returned bytes are exactly the content :func:`save_model` would
    write to disk; pass them to :func:`load_model_bytes` (possibly in
    another process) to rebuild the model.
    """
    buffer = io.BytesIO()
    _write_archive(model, buffer)
    return buffer.getvalue()


def _write_archive(model: Sequential, fh) -> None:
    if not model.built:
        raise NotFittedError("only built models can be saved")
    arrays: dict[str, np.ndarray] = {}
    spec: list[dict] = []
    for i, layer in enumerate(model.layers):
        spec.append({"class": type(layer).__name__, "config": layer.get_config()})
        for key, value in layer.params.items():
            arrays[f"layer{i}.{key}"] = value
        if isinstance(layer, BatchNorm):
            assert layer.running_mean is not None and layer.running_var is not None
            arrays[f"layer{i}.running_mean"] = layer.running_mean
            arrays[f"layer{i}.running_var"] = layer.running_var
    meta = {
        "layers": spec,
        "input_shape": list(model.layers[0].input_shape),
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    ).copy()
    np.savez(fh, **arrays)


def load_model(path: str | Path) -> Sequential:
    """Rebuild a model saved by :func:`save_model`.

    The returned model is built (weights restored) but not compiled; call
    :meth:`~repro.nn.model.Sequential.compile` to continue training.
    """
    with np.load(Path(path)) as archive:
        return _model_from_archive(archive)


def load_model_bytes(data: bytes) -> Sequential:
    """Rebuild a model serialised by :func:`save_model_bytes`."""
    with np.load(io.BytesIO(data)) as archive:
        return _model_from_archive(archive)


def _model_from_archive(archive) -> Sequential:
    meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
    layers = []
    for entry in meta["layers"]:
        cls = _LAYER_REGISTRY.get(entry["class"])
        if cls is None:
            raise ConfigurationError(f"unknown layer class {entry['class']!r}")
        layers.append(cls(**entry["config"]))
    model = Sequential(layers, seed=0)
    model.build(tuple(meta["input_shape"]))
    for i, layer in enumerate(model.layers):
        for key in layer.params:
            layer.params[key][...] = archive[f"layer{i}.{key}"]
        if isinstance(layer, BatchNorm):
            assert layer.running_mean is not None and layer.running_var is not None
            layer.running_mean[...] = archive[f"layer{i}.running_mean"]
            layer.running_var[...] = archive[f"layer{i}.running_var"]
    return model
