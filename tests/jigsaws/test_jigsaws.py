"""Tests for the synthetic JIGSAWS data substrate."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.errors import DatasetError
from repro.gestures.rubric import ErrorMode
from repro.gestures.vocabulary import Gesture
from repro.jigsaws import (
    ERROR_RATES,
    ErrorInjector,
    PRIMITIVES,
    SurgicalDataset,
    loso_splits,
    make_task_dataset,
)
from repro.jigsaws.primitives import SKILL_PROFILES, render_gesture
from repro.jigsaws.schema import SuturingAnchors
from repro.jigsaws.synthesis import SurgicalTaskSynthesizer


class TestPrimitives:
    def test_every_suturing_gesture_has_primitive(self):
        from repro.gestures.models import SUTURING_GESTURES

        for gesture in SUTURING_GESTURES:
            assert gesture in PRIMITIVES

    def test_render_shapes(self):
        frames = render_gesture(
            PRIMITIVES[Gesture.G3],
            SuturingAnchors(),
            SKILL_PROFILES["expert"],
            rng=0,
        )
        assert frames.ndim == 2 and frames.shape[1] == 38
        assert frames.shape[0] >= 4

    def test_novice_slower_than_expert(self):
        anchors = SuturingAnchors()
        novice = render_gesture(
            PRIMITIVES[Gesture.G3], anchors, SKILL_PROFILES["novice"], rng=5
        )
        expert = render_gesture(
            PRIMITIVES[Gesture.G3], anchors, SKILL_PROFILES["expert"], rng=5
        )
        assert novice.shape[0] > expert.shape[0]

    def test_continuity_override(self):
        anchors = SuturingAnchors()
        start = (np.array([0.0, 0.0, 0.0]), np.array([0.01, 0.01, 0.01]))
        frames = render_gesture(
            PRIMITIVES[Gesture.G1],
            anchors,
            SKILL_PROFILES["expert"],
            rng=0,
            start_positions=start,
        )
        assert np.allclose(frames[0, 0:3], start[0], atol=0.01)
        assert np.allclose(frames[0, 19:22], start[1], atol=0.01)

    def test_rotation_blocks_are_rotations(self):
        from repro.kinematics.rotations import is_rotation_matrix

        frames = render_gesture(
            PRIMITIVES[Gesture.G8],
            SuturingAnchors(),
            SKILL_PROFILES["intermediate"],
            rng=1,
        )
        for t in (0, frames.shape[0] // 2, -1):
            assert is_rotation_matrix(frames[t, 3:12].reshape(3, 3), atol=1e-6)


class TestErrorInjector:
    def test_rate_zero_never_injects(self):
        injector = ErrorInjector(rate_scale=0.0)
        frames = np.zeros((30, 38))
        rng = np.random.default_rng(0)
        for _ in range(20):
            __, mode = injector.maybe_inject(
                Gesture.G4, frames, SKILL_PROFILES["novice"], rng
            )
            assert mode is None

    def test_injection_modifies_frames(self):
        injector = ErrorInjector()
        frames = render_gesture(
            PRIMITIVES[Gesture.G4], SuturingAnchors(), SKILL_PROFILES["novice"], rng=3
        )
        modified = injector.apply(Gesture.G4, ErrorMode.NEEDLE_DROP, frames, rng=4)
        assert not np.allclose(modified, frames)
        # Original untouched.
        assert frames is not modified

    def test_needle_drop_opens_jaw(self):
        injector = ErrorInjector()
        frames = render_gesture(
            PRIMITIVES[Gesture.G4], SuturingAnchors(), SKILL_PROFILES["expert"], rng=5
        )
        modified = injector.apply(Gesture.G4, ErrorMode.NEEDLE_DROP, frames, rng=6)
        # Right-arm jaw (column 37) ends clearly more open than nominal.
        assert modified[-1, 37] > frames[-1, 37] + 0.2

    def test_failure_to_dropoff_keeps_jaw_closed(self):
        injector = ErrorInjector()
        frames = render_gesture(
            PRIMITIVES[Gesture.G11], SuturingAnchors(), SKILL_PROFILES["expert"], rng=7
        )
        modified = injector.apply(
            Gesture.G11, ErrorMode.FAILURE_TO_DROPOFF, frames, rng=8
        )
        assert modified[-1, 37] < frames[-1, 37] - 0.3

    def test_velocities_rederived(self):
        injector = ErrorInjector()
        frames = render_gesture(
            PRIMITIVES[Gesture.G6], SuturingAnchors(), SKILL_PROFILES["expert"], rng=9
        )
        modified = injector.apply(Gesture.G6, ErrorMode.OUT_OF_VIEW, frames, rng=10)
        dt = 1.0 / 30.0
        expected = np.gradient(modified[:, 0:3], dt, axis=0)
        assert np.allclose(modified[:, 12:15], expected)

    def test_error_rates_match_table_vii(self):
        assert ERROR_RATES[Gesture.G4] == pytest.approx(0.77)
        assert ERROR_RATES[Gesture.G5] == pytest.approx(0.05)
        assert Gesture.G10 not in ERROR_RATES


class TestSynthesis:
    def test_dataset_structure(self, suturing_dataset):
        assert len(suturing_dataset) == 12
        for demo in suturing_dataset:
            traj = demo.trajectory
            assert traj.n_features == 38
            assert traj.frame_rate_hz == 30.0
            assert traj.gestures is not None and traj.unsafe is not None

    def test_sequences_follow_grammar(self, suturing_dataset):
        from repro.gestures.models import suturing_chain

        chain = suturing_chain()
        for demo in suturing_dataset:
            seq = demo.gesture_sequence()
            assert chain.sequence_log_likelihood(seq) > float("-inf")

    def test_unsafe_marks_whole_gestures(self, suturing_dataset):
        for demo in suturing_dataset:
            traj = demo.trajectory
            for __, start, end in traj.gesture_segments():
                segment = traj.unsafe[start:end]
                assert segment.min() == segment.max()

    def test_deterministic(self):
        synth = SurgicalTaskSynthesizer()
        a = synth.demonstration("B", 1, rng=42)
        b = SurgicalTaskSynthesizer().demonstration("B", 1, rng=42)
        assert np.allclose(a.trajectory.frames, b.trajectory.frames)

    def test_other_tasks(self):
        kt = make_task_dataset("knot_tying", n_demos=4, rng=0)
        assert kt.task == "knot_tying"
        np_ds = make_task_dataset("needle_passing", n_demos=4, rng=0)
        assert len(np_ds) == 4
        with pytest.raises(DatasetError):
            make_task_dataset("juggling")


class TestDatasetOperations:
    def test_windows_shapes(self, suturing_dataset):
        data = suturing_dataset.windows(WindowConfig(5, 2))
        assert data.x.shape[1:] == (5, 38)
        assert data.gesture.shape == (data.n_windows,)
        assert data.gesture.min() >= 0

    def test_windows_do_not_cross_demos(self, suturing_dataset):
        data = suturing_dataset.windows(WindowConfig(5, 1))
        total = sum(
            WindowConfig(5, 1).n_windows(d.n_frames) for d in suturing_dataset
        )
        assert data.n_windows == total

    def test_for_gesture_filter(self, suturing_dataset):
        data = suturing_dataset.windows(WindowConfig(5, 1))
        sub = data.for_gesture(Gesture.G3)
        assert (sub.gesture == Gesture.G3.class_index).all()

    def test_loso_splits_cover_all_trials(self, suturing_dataset):
        folds = list(loso_splits(suturing_dataset))
        held = [t for t, __, __ in folds]
        assert held == suturing_dataset.supertrials()
        for trial, train, test in folds:
            assert all(d.trial == trial for d in test)
            assert all(d.trial != trial for d in train)

    def test_erroneous_counts(self, suturing_dataset):
        total, erroneous = suturing_dataset.erroneous_gesture_counts()
        assert 0 < erroneous < total

    def test_empty_dataset_rejected(self):
        with pytest.raises(DatasetError):
            SurgicalDataset([], task="x")
