"""Regression tests for the hardened pipe transport.

The remote ingest layer surfaced the partial-message/EOF edge cases of
:func:`repro.serving.transport.recv_message`: a peer can die mid-write
(truncating a framed message), a stream can carry bytes that are not a
pickle at all, and a well-formed object can be of the wrong type.  The
contract under test: end-of-stream (including mid-message truncation)
raises ``EOFError``; corrupt-but-intact streams raise ``WorkerError``
and are survivable — a worker answers with an error reply and keeps
serving.
"""

import multiprocessing as mp
import os
import pickle
import struct

import pytest

from repro.errors import WorkerError
from repro.serving import make_synthetic_monitor, monitor_to_bytes
from repro.serving.transport import (
    Reply,
    Request,
    error_reply,
    raise_remote,
    recv_message,
)
from repro.serving.worker import worker_main

N_FEATURES = 6


@pytest.fixture()
def pipe():
    a, b = mp.Pipe(duplex=True)
    yield a, b
    for end in (a, b):
        try:
            end.close()
        except OSError:
            pass


class TestRecvMessage:
    def test_valid_message_passes_type_check(self, pipe):
        a, b = pipe
        a.send(Request("ping"))
        request = recv_message(b, Request, who="test")
        assert request.op == "ping"

    def test_closed_peer_raises_eof(self, pipe):
        a, b = pipe
        a.close()
        with pytest.raises(EOFError):
            recv_message(b, Request, who="test")

    def test_truncated_frame_raises_eof(self, pipe):
        """A peer dying mid-write leaves a length prefix promising more
        bytes than ever arrive: that is end-of-stream, not garbage."""
        a, b = pipe
        # multiprocessing frames messages as a !i length prefix; promise
        # 100 bytes, deliver 3, then vanish.
        os.write(a.fileno(), struct.pack("!i", 100) + b"abc")
        a.close()
        with pytest.raises(EOFError):
            recv_message(b, Request, who="test")

    def test_corrupt_pickle_raises_worker_error(self, pipe):
        a, b = pipe
        a.send_bytes(b"this is not a pickle")
        with pytest.raises(WorkerError, match="corrupt or truncated"):
            recv_message(b, Request, who="test")

    def test_truncated_pickle_raises_worker_error(self, pipe):
        a, b = pipe
        blob = pickle.dumps(Request("feed", session_id="s"))
        a.send_bytes(blob[: len(blob) // 2])
        with pytest.raises(WorkerError, match="corrupt or truncated"):
            recv_message(b, Request, who="test")

    def test_wrong_type_raises_worker_error(self, pipe):
        a, b = pipe
        a.send({"op": "ping"})  # a dict is not a Request
        with pytest.raises(WorkerError, match="expected Request, got dict"):
            recv_message(b, Request, who="test")

    def test_timeout_raises_worker_error(self, pipe):
        _, b = pipe
        with pytest.raises(WorkerError, match="unresponsive"):
            recv_message(b, Reply, timeout_s=0.05, who="shard 3")

    def test_who_names_the_peer(self, pipe):
        a, b = pipe
        a.send_bytes(b"\x80garbage")
        with pytest.raises(WorkerError, match="shard 7"):
            recv_message(b, Request, who="shard 7")


class TestWorkerSurvivesCorruptInput:
    def test_worker_replies_error_and_keeps_serving(self):
        """End to end: garbage on the pipe gets an error reply; the very
        next valid request is served normally — the shard's sessions
        outlive bad input instead of dying with an unpickling crash."""
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        blob = monitor_to_bytes(monitor)
        ctx = mp.get_context(
            "fork" if "fork" in mp.get_all_start_methods() else "spawn"
        )
        parent, child = ctx.Pipe(duplex=True)
        process = ctx.Process(
            target=worker_main, args=(child, blob, 4), daemon=True
        )
        process.start()
        child.close()
        try:
            parent.send(Request("ping"))
            assert recv_message(parent, Reply, timeout_s=60.0).ok

            parent.send_bytes(b"definitely not a pickled Request")
            reply = recv_message(parent, Reply, timeout_s=60.0)
            assert not reply.ok
            assert reply.error_type == "WorkerError"
            assert "corrupt or truncated" in reply.error

            parent.send({"op": "ping"})  # wrong type, also survivable
            reply = recv_message(parent, Reply, timeout_s=60.0)
            assert not reply.ok

            parent.send(Request("open", session_id="still-alive"))
            reply = recv_message(parent, Reply, timeout_s=60.0)
            assert reply.ok and reply.value == "still-alive"

            parent.send(Request("stop"))
            recv_message(parent, Reply, timeout_s=60.0)
        finally:
            parent.close()
            process.join(30.0)
            if process.is_alive():  # pragma: no cover - cleanup only
                process.terminate()
                process.join()
        assert process.exitcode == 0


class TestErrorReplyRoundTrip:
    def test_error_reply_preserves_type_through_raise_remote(self):
        reply = error_reply(WorkerError("boom"), has_pending=True)
        assert reply.has_pending
        with pytest.raises(WorkerError, match="boom"):
            raise_remote(reply)
