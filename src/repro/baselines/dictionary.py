"""Sparse dictionary learning: OMP coding + MOD dictionary updates.

The coding/learning core of the SDSDL comparator.  Signals are encoded
with Orthogonal Matching Pursuit at a fixed sparsity level; the
dictionary is refit in closed form between coding passes (Method of
Optimal Directions) with renormalised, dead-atom-replaced columns.
"""

from __future__ import annotations

import numpy as np

from ..config import as_generator
from ..errors import ConfigurationError, NotFittedError, ShapeError


def omp_encode(
    signals: np.ndarray, dictionary: np.ndarray, sparsity: int
) -> np.ndarray:
    """Orthogonal Matching Pursuit codes for a batch of signals.

    Parameters
    ----------
    signals:
        Array of shape ``(n, d)``.
    dictionary:
        Atom matrix of shape ``(k, d)`` with unit-norm rows.
    sparsity:
        Number of atoms selected per signal.

    Returns
    -------
    numpy.ndarray
        Sparse codes of shape ``(n, k)``.
    """
    signals = np.asarray(signals, dtype=float)
    dictionary = np.asarray(dictionary, dtype=float)
    if signals.ndim != 2 or dictionary.ndim != 2:
        raise ShapeError("signals and dictionary must be 2-D")
    if signals.shape[1] != dictionary.shape[1]:
        raise ShapeError(
            f"signal dim {signals.shape[1]} != atom dim {dictionary.shape[1]}"
        )
    k = dictionary.shape[0]
    if not 1 <= sparsity <= k:
        raise ConfigurationError("sparsity must be in [1, n_atoms]")
    codes = np.zeros((signals.shape[0], k))
    atoms_t = dictionary.T  # (d, k)
    for i in range(signals.shape[0]):
        residual = signals[i].copy()
        selected: list[int] = []
        for _ in range(sparsity):
            correlations = residual @ atoms_t
            correlations[selected] = 0.0
            best = int(np.argmax(np.abs(correlations)))
            if abs(correlations[best]) < 1e-12:
                break
            selected.append(best)
            sub = dictionary[selected]  # (s, d)
            gram = sub @ sub.T
            coef, *_ = np.linalg.lstsq(gram, sub @ signals[i], rcond=None)
            residual = signals[i] - coef @ sub
        if selected:
            codes[i, selected] = coef
    return codes


class DictionaryLearner:
    """MOD dictionary learning with OMP sparse coding.

    Parameters
    ----------
    n_atoms:
        Dictionary size ``k``.
    sparsity:
        OMP sparsity level per signal.
    n_iterations:
        Alternations of (code, update).
    """

    def __init__(
        self,
        n_atoms: int = 64,
        sparsity: int = 4,
        n_iterations: int = 8,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if n_atoms < 2:
            raise ConfigurationError("n_atoms must be >= 2")
        if n_iterations < 1:
            raise ConfigurationError("n_iterations must be >= 1")
        self.n_atoms = int(n_atoms)
        self.sparsity = int(sparsity)
        self.n_iterations = int(n_iterations)
        self._rng = as_generator(seed)
        self.dictionary: np.ndarray | None = None  # (k, d)

    def fit(self, signals: np.ndarray) -> "DictionaryLearner":
        """Learn the dictionary from ``(n, d)`` training signals."""
        signals = np.asarray(signals, dtype=float)
        if signals.ndim != 2 or signals.shape[0] < self.n_atoms:
            raise ShapeError(
                "signals must be (n >= n_atoms, d); got "
                f"{signals.shape} with n_atoms={self.n_atoms}"
            )
        # Init from random training signals (standard K-SVD practice).
        pick = self._rng.permutation(signals.shape[0])[: self.n_atoms]
        dictionary = signals[pick].copy()
        dictionary = _normalise_rows(dictionary, self._rng)

        for _ in range(self.n_iterations):
            codes = omp_encode(signals, dictionary, self.sparsity)
            # MOD: D = argmin ||X - C D||^2 = (C^T C + eps I)^-1 C^T X.
            gram = codes.T @ codes + 1e-8 * np.eye(self.n_atoms)
            dictionary = np.linalg.solve(gram, codes.T @ signals)
            dictionary = _replace_dead_atoms(dictionary, signals, codes, self._rng)
            dictionary = _normalise_rows(dictionary, self._rng)
        self.dictionary = dictionary
        return self

    def encode(self, signals: np.ndarray) -> np.ndarray:
        """Sparse codes for new signals."""
        if self.dictionary is None:
            raise NotFittedError("DictionaryLearner must be fitted first")
        return omp_encode(signals, self.dictionary, self.sparsity)


def _normalise_rows(matrix: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    zero = norms[:, 0] < 1e-12
    if zero.any():
        matrix[zero] = rng.standard_normal((int(zero.sum()), matrix.shape[1]))
        norms = np.linalg.norm(matrix, axis=1, keepdims=True)
    return matrix / norms


def _replace_dead_atoms(
    dictionary: np.ndarray,
    signals: np.ndarray,
    codes: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Re-seed atoms that no signal uses with poorly-represented signals."""
    usage = np.abs(codes).sum(axis=0)
    dead = np.flatnonzero(usage < 1e-12)
    if dead.size == 0:
        return dictionary
    reconstruction = codes @ dictionary
    errors = ((signals - reconstruction) ** 2).sum(axis=1)
    worst = np.argsort(-errors)[: dead.size]
    dictionary[dead] = signals[worst]
    return dictionary
