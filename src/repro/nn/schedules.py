"""Learning-rate schedules.

The paper trains with "adaptive learning rate with step-decay"
(Section III): the rate is multiplied by a fixed factor every N epochs.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class ConstantSchedule:
    """A schedule that always returns the initial rate."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0.0:
            raise ConfigurationError("learning_rate must be positive")
        self.learning_rate = float(learning_rate)

    def rate_for_epoch(self, epoch: int) -> float:
        """Learning rate to use during ``epoch`` (0-based)."""
        if epoch < 0:
            raise ConfigurationError("epoch must be >= 0")
        return self.learning_rate


class StepDecay(ConstantSchedule):
    """Multiply the rate by ``factor`` every ``every`` epochs.

    ``rate(epoch) = initial * factor ** (epoch // every)``, optionally
    floored at ``min_rate``.
    """

    def __init__(
        self,
        learning_rate: float,
        factor: float = 0.5,
        every: int = 10,
        min_rate: float = 0.0,
    ) -> None:
        super().__init__(learning_rate)
        if not 0.0 < factor <= 1.0:
            raise ConfigurationError("factor must be in (0, 1]")
        if every < 1:
            raise ConfigurationError("every must be >= 1")
        if min_rate < 0.0:
            raise ConfigurationError("min_rate must be >= 0")
        self.factor = float(factor)
        self.every = int(every)
        self.min_rate = float(min_rate)

    def rate_for_epoch(self, epoch: int) -> float:
        if epoch < 0:
            raise ConfigurationError("epoch must be >= 0")
        rate = self.learning_rate * self.factor ** (epoch // self.every)
        return max(rate, self.min_rate)
