"""Tests for the vision substrate (SSIM, threshold, contours, DTW, labeling)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.simulation import RavenSimulator, VirtualCamera, Workspace
from repro.simulation.camera import BLOCK_COLOR
from repro.simulation.teleop import DEFAULT_OPERATORS
from repro.simulation.blocktransfer import generate_demonstration
from repro.faults import FaultInjector, FaultSpec, FaultWindow, GrasperAngleFault
from repro.vision import (
    color_distance_mask,
    connected_components,
    detect_failure,
    dtw_distance,
    dtw_path,
    largest_component_centroid,
    ssim,
    threshold_block,
    track_centroids,
)
from repro.vision.labeling import last_motion_frame
from repro.vision.ssim import ssim_series
from repro.vision.threshold import to_grayscale


class TestSSIM:
    def test_identical_images(self):
        img = np.random.default_rng(0).random((20, 30))
        assert ssim(img, img) == pytest.approx(1.0)

    def test_different_images_lower(self):
        rng = np.random.default_rng(1)
        a = rng.random((20, 30))
        b = rng.random((20, 30))
        assert ssim(a, b) < 0.5

    def test_small_perturbation_high_similarity(self):
        rng = np.random.default_rng(2)
        a = rng.random((20, 30))
        b = a + rng.normal(0, 0.01, a.shape)
        assert 0.8 < ssim(a, b) < 1.0

    def test_series(self):
        img = np.random.default_rng(3).random((16, 16))
        frames = np.stack([img, img * 0.5 + 0.25])
        series = ssim_series(frames, img)
        assert series[0] == pytest.approx(1.0)
        assert series[1] < series[0]

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ShapeError):
            ssim(np.zeros((10, 10)), np.zeros((10, 11)))

    def test_rejects_even_window(self):
        with pytest.raises(ShapeError):
            ssim(np.zeros((10, 10)), np.zeros((10, 10)), window=4)


class TestThreshold:
    def test_mask_finds_exact_color(self):
        frame = np.zeros((8, 8, 3))
        frame[2:4, 3:5] = BLOCK_COLOR
        mask = threshold_block(frame)
        assert mask.sum() == 4
        assert mask[2, 3] and mask[3, 4]

    def test_tolerance(self):
        frame = np.zeros((4, 4, 3))
        frame[0, 0] = BLOCK_COLOR * 0.95
        assert color_distance_mask(frame, BLOCK_COLOR, tolerance=0.2)[0, 0]
        assert not color_distance_mask(frame, BLOCK_COLOR, tolerance=0.01)[0, 0]

    def test_grayscale_weights(self):
        white = np.ones((2, 2, 3))
        assert np.allclose(to_grayscale(white), 1.0)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ShapeError):
            threshold_block(np.zeros((4, 4)))


class TestContours:
    def test_connected_components(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[1:3, 1:3] = True
        mask[6:9, 6:9] = True
        __, n = connected_components(mask)
        assert n == 2

    def test_largest_centroid(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[1:3, 1:3] = True  # 4 px
        mask[5:9, 5:9] = True  # 16 px -> the largest
        centroid = largest_component_centroid(mask)
        assert centroid == pytest.approx((6.5, 6.5))

    def test_empty_mask_is_none(self):
        assert largest_component_centroid(np.zeros((5, 5), dtype=bool)) is None

    def test_track_centroids_carries_last(self):
        frames = np.zeros((3, 8, 8, 3))
        frames[0, 2, 2] = BLOCK_COLOR  # visible
        # frame 1: block occluded -> carry previous centroid
        frames[2, 5, 6] = BLOCK_COLOR
        trace = track_centroids(frames, threshold_block)
        assert trace[0].tolist() == [2.0, 2.0]
        assert trace[1].tolist() == [2.0, 2.0]
        assert trace[2].tolist() == [5.0, 6.0]


class TestDTW:
    def test_identical_series_zero(self):
        series = np.sin(np.linspace(0, 4, 40))
        assert dtw_distance(series, series) == pytest.approx(0.0, abs=1e-12)

    def test_time_shift_tolerated(self):
        t = np.linspace(0, 4 * np.pi, 80)
        a = np.sin(t)
        b = np.sin(t + 0.4)
        shifted = dtw_distance(a, b)
        euclid = float(np.abs(a - b).mean()) / 2
        assert shifted < euclid  # warping absorbs most of the shift

    def test_distance_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.random(20)
        b = rng.random(25)
        assert dtw_distance(a, b) == pytest.approx(dtw_distance(b, a))

    def test_path_endpoints(self):
        a = np.arange(10.0)
        b = np.arange(15.0)
        path = dtw_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (9, 14)

    def test_path_monotone(self):
        rng = np.random.default_rng(1)
        path = dtw_path(rng.random(12), rng.random(9))
        for (i0, j0), (i1, j1) in zip(path[:-1], path[1:]):
            assert 0 <= i1 - i0 <= 1 and 0 <= j1 - j0 <= 1

    def test_multivariate(self):
        rng = np.random.default_rng(2)
        a = rng.random((10, 2))
        assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-12)

    def test_wide_band_matches_unbanded(self):
        rng = np.random.default_rng(3)
        a = rng.random(15)
        b = rng.random(12)
        assert dtw_distance(a, b, band=20) == pytest.approx(dtw_distance(a, b))

    def test_narrow_band_cannot_lower_cost(self):
        rng = np.random.default_rng(4)
        a = rng.random(20)
        b = rng.random(20)
        assert dtw_distance(a, b, band=1) >= dtw_distance(a, b) - 1e-12


class TestLastMotionFrame:
    def test_detects_freeze(self):
        trace = np.zeros((10, 2))
        trace[:5, 0] = np.arange(5) * 3.0  # moving, then frozen
        assert last_motion_frame(trace) == 5

    def test_never_moves(self):
        assert last_motion_frame(np.ones((5, 2))) == 0


class TestDetectFailure:
    @pytest.fixture(scope="class")
    def scenario(self):
        ws = Workspace()
        camera = VirtualCamera(ws.extent_mm)
        sim = RavenSimulator(workspace=ws, camera=camera, rng=0)
        ref_cmd = generate_demonstration(
            DEFAULT_OPERATORS[0], workspace=ws, rng=21, sample_rate_hz=50.0
        )
        reference = sim.run(ref_cmd)
        ok_cmd = generate_demonstration(
            DEFAULT_OPERATORS[1], workspace=ws, rng=22, sample_rate_hz=50.0
        )
        injector = FaultInjector()
        drop = sim.run(
            injector.inject(
                ok_cmd, FaultSpec(grasper=GrasperAngleFault(1.35, FaultWindow(0.55, 0.70)))
            )
        )
        dropoff = sim.run(
            injector.inject(
                ok_cmd, FaultSpec(grasper=GrasperAngleFault(0.4, FaultWindow(0.65, 0.90)))
            )
        )
        clean = sim.run(ok_cmd)
        return reference, clean, drop, dropoff

    def test_clean_trial_not_flagged(self, scenario):
        reference, clean, __, __ = scenario
        label = detect_failure(clean, reference)
        assert not label.block_drop and not label.dropoff_failure

    def test_block_drop_detected(self, scenario):
        reference, __, drop, __ = scenario
        assert drop.outcome.value == "block_drop"
        label = detect_failure(drop, reference)
        assert label.block_drop
        assert label.failure_video_frame is not None

    def test_dropoff_detected(self, scenario):
        reference, __, __, dropoff = scenario
        assert dropoff.outcome.value == "dropoff_failure"
        label = detect_failure(dropoff, reference)
        assert label.dropoff_failure and not label.block_drop
