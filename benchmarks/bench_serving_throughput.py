"""Benchmark: multi-stream serving throughput and per-tick latency.

Part 1 measures the batched :class:`repro.serving.MonitorService`
against the equivalent number of sequential single-stream
:meth:`~repro.core.SafetyMonitor.stream` loops, at 1 / 8 / 64 concurrent
sessions: frames per second, speedup, and p50/p99 per-tick latency.
The point of the serving tentpole is that each pipeline stage runs once
per tick on the window batch stacked *across* sessions, so throughput
should grow strongly sub-linearly in session count.

Part 2 compares the inference backends (:mod:`repro.nn.backends`) on
the same drain workload: the bit-exact ``reference`` path versus the
``compiled`` folded-scaler zero-allocation plan and its ``compiled-f32``
float32 variant, per session count, with the speedup over the reference
at the same count.  The compiled backend's contract is >= 1.5x reference
drain throughput at 64 sessions (the perf CI smoke gates a relaxed
>= 1x on shared runners).

Part 3 measures the sharded service
(:class:`repro.serving.ShardedMonitorService`) at 1 / 2 / 4 worker
processes over the same 64-session workload: aggregate frames/sec,
speedup over the 1-shard row, and p50/p99 per-shard tick latency.
Frames travel over the zero-copy shared-memory data plane
(``data_plane="shm"``, the default) — ingest writes each frame batch
once into the shard's ring, the worker reads it in place, and events
come back the same way; the pipe carries only control ops.  Workers
drain their backlogs concurrently, so on a machine with >= 4 cores the
4-shard row should reach >= 2x the 1-shard aggregate.  On fewer cores
the processes time-slice one CPU and the row mainly measures the
transport overhead floor, so every sharded row records ``cpu_count``
and ``cpu_affinity`` and carries ``degraded: true`` whenever fewer
cores than shards were available — and ``--check-sharded`` refuses
outright (exits non-zero) below 4 cores rather than silently passing.

``--balance-only`` runs the load-aware rebalancing scenario: 64
sessions whose ids are mined to pile ~5/8 of the fleet onto one of four
shards, ticked until the hot shard's p99 shows the skew, then rebalanced
live by the balancer policy (:func:`~repro.serving.plan_sheds` +
:meth:`~repro.serving.ShardedMonitorService.shed`) and drained.
``--check-balance`` gates the tentpole contract — post-balance max-shard
p99 within 1.5x the fleet median, zero fail-safe closures, event
streams bit-identical to an unbalanced single-service run — and, like
``--check-sharded``, REFUSES below 4 visible cores.

Every run also writes a machine-readable ``BENCH_serving.json``
(``--json`` overrides the path) so the perf trajectory is tracked
across PRs; CI uploads it as an artifact.

Run:  PYTHONPATH=src python benchmarks/bench_serving_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.nn.backends import BACKEND_NAMES
from repro.serving import (
    MonitorService,
    ShardedMonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
    monitor_to_bytes,
    plan_sheds,
)

N_FEATURES = 38


def visible_cores() -> int:
    """CPU cores this process may actually run on.

    ``os.cpu_count()`` reports the machine; a containerised or pinned
    runner can see far fewer.  The affinity mask is the honest number
    for judging whether a K-shard row had K cores to spread over.
    """
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1


def run_sequential(monitor, trajectories) -> tuple[float, np.ndarray]:
    """Total seconds and per-frame latencies for back-to-back streams."""
    latencies = []
    start = time.perf_counter()
    for trajectory in trajectories:
        for *_, latency_ms in monitor.stream(trajectory):
            latencies.append(latency_ms)
    return time.perf_counter() - start, np.asarray(latencies)


def run_service(
    monitor, trajectories, backend: str = "reference"
) -> tuple[float, np.ndarray]:
    """Total seconds and per-tick latencies for one batched service."""
    service = MonitorService(
        monitor, max_sessions=len(trajectories), backend=backend
    )
    start = time.perf_counter()
    for trajectory in trajectories:
        session_id = service.open_session()
        service.feed(session_id, trajectory.frames)
    service.drain(collect=False)
    elapsed = time.perf_counter() - start
    return elapsed, service.stats.tick_ms


def run_sharded(
    monitor_bytes: bytes, trajectories, n_shards: int
) -> tuple[float, np.ndarray]:
    """Total seconds and per-shard tick latencies for a sharded drain.

    Worker spawn/bootstrap happens outside the timed region (a one-time
    deployment cost); the measurement covers ingest plus the concurrent
    drain of every shard's backlog.
    """
    with ShardedMonitorService(
        monitor_bytes=monitor_bytes,
        n_shards=n_shards,
        max_sessions_per_shard=len(trajectories),
    ) as service:
        start = time.perf_counter()
        for i, trajectory in enumerate(trajectories):
            session_id = service.open_session(f"bench-{i:03d}")
            service.feed(session_id, trajectory.frames)
        service.drain(collect=False)
        elapsed = time.perf_counter() - start
        tick_ms = service.stats().tick_ms
    return elapsed, tick_ms


def _percentiles(tick_ms: np.ndarray) -> tuple[float, float]:
    if tick_ms.size == 0:
        return 0.0, 0.0
    return (
        float(np.percentile(tick_ms, 50)),
        float(np.percentile(tick_ms, 99)),
    )


def benchmark_sharded(
    monitor_bytes: bytes, n_sessions: int, n_frames: int, n_shards: int, seed: int = 0
) -> dict:
    """One sharded row: ``n_sessions`` sessions over ``n_shards`` workers.

    Every row records the CPU budget it was measured under —
    ``cpu_count`` (machine) and ``cpu_affinity`` (cores this process may
    use) — and is marked ``degraded`` when the affinity mask offers
    fewer cores than shards.  A degraded row measures time-slicing plus
    transport overhead, *not* parallel speedup, and must never be read
    (or gated on) as authoritative: the committed 0.53x "regression"
    was exactly such a row, recorded on a 1-core box without saying so.
    """
    trajectories = [
        make_random_walk_trajectory(n_frames, n_features=N_FEATURES, seed=seed + i)
        for i in range(n_sessions)
    ]
    total_frames = n_sessions * n_frames
    elapsed, tick_ms = run_sharded(monitor_bytes, trajectories, n_shards)
    p50, p99 = _percentiles(tick_ms)
    affinity = visible_cores()
    return {
        "shards": n_shards,
        "sessions": n_sessions,
        "backend": "reference",
        "data_plane": "shm",
        "frames": total_frames,
        "fps": total_frames / elapsed,
        "tick_p50_ms": p50,
        "tick_p99_ms": p99,
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity": affinity,
        "degraded": affinity < n_shards,
    }


def benchmark_resize(
    monitor_bytes: bytes, n_sessions: int, n_frames: int, seed: int = 0
) -> dict:
    """Resize under load: K=2→4→1 mid-drain, nothing may fail safe.

    Opens ``n_sessions`` equal-length sessions on a 2-shard fleet,
    ticks a quarter of the stream, live-resizes to 4 shards, ticks
    another quarter, resizes down to 1 and drains — counting every
    delivered event.  The elasticity contract is *zero fail-safe
    closures and zero lost events* while the fleet changes shape; the
    row also reports aggregate throughput including the resize cost.
    """
    trajectories = [
        make_random_walk_trajectory(n_frames, n_features=N_FEATURES, seed=seed + i)
        for i in range(n_sessions)
    ]
    total_frames = n_sessions * n_frames
    with ShardedMonitorService(
        monitor_bytes=monitor_bytes,
        n_shards=2,
        max_sessions_per_shard=n_sessions,
    ) as service:
        start = time.perf_counter()
        for i, trajectory in enumerate(trajectories):
            session_id = service.open_session(f"resize-{i:03d}")
            service.feed(session_id, trajectory.frames)
        n_events = 0
        for _ in range(n_frames // 4):
            n_events += len(service.tick())
        service.resize(4)
        for _ in range(n_frames // 4):
            n_events += len(service.tick())
        service.resize(1)
        n_events += len(service.drain())
        elapsed = time.perf_counter() - start
        failsafe_closures = len(service.failed_sessions)
    return {
        "resize_path": "2->4->1",
        "sessions": n_sessions,
        "frames": total_frames,
        "events_delivered": n_events,
        "events_complete": n_events == total_frames,
        "failsafe_closures": failsafe_closures,
        "fps": total_frames / elapsed,
    }


def _mine_skewed_ids(service, quotas: dict[int, int]) -> list[str]:
    """Session ids whose consistent-hash placement fills ``quotas``.

    ``resolve_placement`` is a pure ring lookup (no worker round trip),
    so piling a deliberate hot spot onto one shard is just rejection
    sampling over candidate ids.
    """
    remaining = dict(quotas)
    ids: list[str] = []
    candidate = 0
    while any(v > 0 for v in remaining.values()):
        sid = f"balance-{candidate:05d}"
        candidate += 1
        _, shard = service.resolve_placement(sid)
        if remaining.get(shard, 0) > 0:
            remaining[shard] -= 1
            ids.append(sid)
    return ids


def benchmark_balance(
    monitor, monitor_bytes: bytes, n_sessions: int, n_frames: int
) -> dict:
    """Skewed load rebalanced live: the ``--check-balance`` scenario.

    Opens ``n_sessions`` sessions on a 4-shard fleet with ids *mined* so
    ~5/8 of them hash onto one shard, ticks a quarter of the stream to
    let the hot shard's p99 build up, then runs the balancer policy
    (:func:`~repro.serving.plan_sheds`) to convergence — shedding
    sessions off the hot shard through the live-migration path — and
    drains the rest.  The gate is the tentpole's promise: after
    balancing, the max-shard p99 (measured over post-balance ticks only)
    sits within 1.5x the fleet median, nothing failed safe, and every
    per-session event stream is bit-identical to an uninterrupted
    single-service run of the same trajectories.
    """
    n_shards = 4
    hot_quota = (n_sessions * 5) // 8
    per_cold = (n_sessions - hot_quota) // (n_shards - 1)
    trajectories = [
        make_random_walk_trajectory(n_frames, n_features=N_FEATURES, seed=i)
        for i in range(n_sessions)
    ]
    total_frames = n_sessions * n_frames
    events = []
    with ShardedMonitorService(
        monitor_bytes=monitor_bytes,
        n_shards=n_shards,
        max_sessions_per_shard=n_sessions,
    ) as service:
        quotas = {i: per_cold for i in range(1, n_shards)}
        quotas[0] = n_sessions - per_cold * (n_shards - 1)
        session_ids = _mine_skewed_ids(service, quotas)
        hot_shard = max(quotas, key=quotas.get)
        start = time.perf_counter()
        for sid, trajectory in zip(session_ids, trajectories):
            service.open_session(sid)
            service.feed(sid, trajectory.frames)
        warmup = max(1, n_frames // 4)
        for _ in range(warmup):
            events.extend(service.tick())
        # The balancer policy to convergence: plan, shed, re-plan.  The
        # occupancy-gap guard in plan_sheds guarantees termination; the
        # iteration cap is belt and braces.
        sheds = []
        for _ in range(32):
            # Trigger below the gate's 1.5x contract (and with no noise
            # floor): the bench must rebalance even where per-shard
            # latency skew is muted, e.g. shards time-slicing few cores.
            plan = plan_sheds(
                service.shard_stats(),
                service.shard_occupancy(),
                skew_ratio=1.2,
                max_moves=8,
                min_p99_ms=0.0,
            )
            if plan is None:
                break
            victims = service.sessions_on(plan.hot)[: plan.n_sessions]
            moved = service.shed(victims, plan.cold)
            if not moved:
                break
            sheds.append({"from": plan.hot, "to": plan.cold, "n": len(moved)})
        ticks_after = 0
        for _ in range(n_frames - warmup):
            events.extend(service.tick())
            ticks_after += 1
        events.extend(service.drain())
        elapsed = time.perf_counter() - start
        occupancy = service.shard_occupancy()
        failsafe_closures = len(service.failed_sessions)
        # Post-balance latency only: the tail of each shard's tick ring
        # covers at most the ticks since the last shed.
        p99_by_shard = {}
        for index, stats in service.shard_stats().items():
            tick_ms = stats.tick_ms
            tail = tick_ms[-min(ticks_after, tick_ms.size) :]
            p99_by_shard[index] = (
                float(np.percentile(tail, 99)) if tail.size else 0.0
            )
    reference = MonitorService(
        monitor, max_sessions=n_sessions, backend="reference"
    )
    for sid, trajectory in zip(session_ids, trajectories):
        reference.open_session(sid)
        reference.feed(sid, trajectory.frames)
    streams_identical = _per_session_streams(events) == _per_session_streams(
        reference.drain()
    )
    p99s = sorted(p99_by_shard.values())
    p99_median = float(np.median(p99s)) if p99s else 0.0
    p99_max = p99s[-1] if p99s else 0.0
    affinity = visible_cores()
    return {
        "scenario": f"skewed {quotas[hot_shard]}/{n_sessions} on one shard",
        "shards": n_shards,
        "sessions": n_sessions,
        "frames": total_frames,
        "fps": total_frames / elapsed,
        "sheds": sheds,
        "sessions_moved": sum(s["n"] for s in sheds),
        "occupancy_final": {str(k): v for k, v in sorted(occupancy.items())},
        "p99_by_shard_ms": {
            str(k): v for k, v in sorted(p99_by_shard.items())
        },
        "p99_max_ms": p99_max,
        "p99_median_ms": p99_median,
        "p99_ratio": (p99_max / p99_median) if p99_median else 0.0,
        "events_delivered": len(events),
        "events_complete": len(events) == total_frames,
        "failsafe_closures": failsafe_closures,
        "streams_identical": streams_identical,
        "cpu_count": os.cpu_count() or 1,
        "cpu_affinity": affinity,
        "degraded": affinity < n_shards,
    }


def _per_session_streams(events) -> dict:
    """Per-session event-key sequences (the bit-identity comparand)."""
    streams: dict[str, list] = {}
    for e in events:
        streams.setdefault(e.session_id, []).append(
            (e.frame_index, e.gesture, e.score, e.flag, e.error)
        )
    return streams


def _print_balance_row(row: dict) -> None:
    print(
        f"\nload-aware rebalancing — {row['sessions']} sessions on "
        f"{row['shards']} shards, {row['scenario']}, "
        f"{row['cpu_affinity']} CPU core(s) visible"
    )
    print(
        f"  sheds: {row['sheds']} ({row['sessions_moved']} sessions moved), "
        f"final occupancy: {row['occupancy_final']}"
    )
    print(
        f"  post-balance tick p99 by shard: {row['p99_by_shard_ms']} "
        f"(max {row['p99_max_ms']:.3f}ms / median {row['p99_median_ms']:.3f}ms "
        f"= {row['p99_ratio']:.2f}x)"
    )
    print(
        f"  events: {row['events_delivered']}/{row['frames']} "
        f"(complete: {row['events_complete']}), fail-safe closures: "
        f"{row['failsafe_closures']}, bit-identical streams: "
        f"{row['streams_identical']}, aggregate {row['fps']:.0f} fps"
    )


def _check_balance_gate(row: dict) -> int:
    """The --check-balance gate.

    Like ``--check-sharded``, it REFUSES below 4 visible cores: a skew
    measurement where four shards time-slice one CPU says nothing about
    load, so a "pass" there would be meaningless.
    """
    n_cores = visible_cores()
    if n_cores < 4:
        print(
            f"check-balance: REFUSED — only {n_cores} CPU core(s) visible "
            f"and the balance gate needs >= 4 for a meaningful per-shard "
            f"latency skew measurement.  Run this gate on a >= 4-core "
            f"runner.",
            file=sys.stderr,
        )
        return 1
    status = 0
    if row["sessions_moved"] == 0:
        print(
            "FAIL: the balancer moved nothing off a deliberately skewed "
            "fleet",
            file=sys.stderr,
        )
        status = 1
    if row["p99_ratio"] > 1.5:
        print(
            f"FAIL: post-balance max-shard p99 is {row['p99_ratio']:.2f}x "
            f"the fleet median (contract: <= 1.5x)",
            file=sys.stderr,
        )
        status = 1
    if row["failsafe_closures"] or not row["events_complete"]:
        print(
            f"FAIL: rebalancing lost sessions or events "
            f"({row['failsafe_closures']} fail-safe closures, "
            f"{row['events_delivered']}/{row['frames']} events)",
            file=sys.stderr,
        )
        status = 1
    if not row["streams_identical"]:
        print(
            "FAIL: event streams diverged from the unbalanced "
            "single-service run",
            file=sys.stderr,
        )
        status = 1
    return status


def _report_balance(row: dict, args, n_frames: int) -> int:
    """--balance-only output: print the row, merge it into the report."""
    _print_balance_row(row)
    report = {}
    if os.path.exists(args.json):
        try:
            with open(args.json) as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError):
            report = {}
    report.setdefault("meta", {}).update(
        {"balance_n_frames_per_session": n_frames}
    )
    report["balance"] = row
    report.setdefault("summary", {})["balance_p99_ratio"] = row["p99_ratio"]
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.json}")
    if args.check_balance:
        return _check_balance_gate(row)
    return 0


def _print_resize_row(row: dict, n_cores: int) -> None:
    print(
        f"\nresize under load — {row['sessions']} sessions, "
        f"K={row['resize_path']}, {n_cores} CPU core(s) visible"
    )
    print(
        f"  events delivered: {row['events_delivered']}/{row['frames']} "
        f"(complete: {row['events_complete']}), fail-safe closures: "
        f"{row['failsafe_closures']}, aggregate {row['fps']:.0f} fps"
    )


def _check_resize_gate(row: dict, n_cores: int) -> int:
    """The --check-resize gate; returns the exit-status contribution."""
    if n_cores < 2:
        print(
            "check-resize: skipped (needs >= 2 cores for a stable "
            "multi-process measurement)"
        )
        return 0
    if row["failsafe_closures"] or not row["events_complete"]:
        print(
            f"FAIL: resize under load lost sessions or events "
            f"({row['failsafe_closures']} fail-safe closures, "
            f"{row['events_delivered']}/{row['frames']} events)",
            file=sys.stderr,
        )
        return 1
    return 0


def _report_resize(row: dict, args, n_cores: int, n_frames: int) -> int:
    """--resize-only output: print the row, merge it into the report."""
    _print_resize_row(row, n_cores)
    report = {}
    if os.path.exists(args.json):
        try:
            with open(args.json) as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError):
            report = {}
    report.setdefault("meta", {}).update(
        {"resize_n_frames_per_session": n_frames, "cpu_count": n_cores}
    )
    report["resize"] = row
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.json}")
    if args.check_resize:
        return _check_resize_gate(row, n_cores)
    return 0


def _run_sharded_rows(monitor_bytes: bytes, n_frames: int) -> list[dict]:
    """Measure and print the sharded scaling table (K = 1, 2, 4)."""
    n_cores = visible_cores()
    print(
        f"\nsharded serving — 64 sessions, {n_frames} frames/session, "
        f"{n_cores} CPU core(s) visible"
    )
    print(
        f"{'shards':>8} {'sessions':>8} {'agg fps':>10} {'vs 1 shard':>10} "
        f"{'tick p50':>9} {'tick p99':>9}"
    )
    rows = [
        benchmark_sharded(monitor_bytes, 64, n_frames, n_shards)
        for n_shards in (1, 2, 4)
    ]
    base_fps = rows[0]["fps"]
    for r in rows:
        degraded = "  [degraded]" if r["degraded"] else ""
        print(
            f"{r['shards']:>8} {r['sessions']:>8} {r['fps']:>10.0f} "
            f"{r['fps'] / base_fps:>9.1f}x "
            f"{r['tick_p50_ms']:>7.2f}ms {r['tick_p99_ms']:>7.2f}ms{degraded}"
        )
    speedup = rows[-1]["fps"] / base_fps
    print(
        f"\n4-shard aggregate over 1 shard: {speedup:.1f}x "
        f"({n_cores} core(s); expect >= 2x only with >= 4 cores)"
    )
    return rows


def _check_sharded_gate(sharded_rows: list[dict]) -> int:
    """The CI gate behind ``--check-sharded``.

    On a box with fewer than 4 visible cores the gate REFUSES — exit
    non-zero with a loud message — instead of silently passing.  A
    silent pass on an under-provisioned runner is exactly how the
    0.53x sharded regression went unnoticed: the gate "ran" on a
    1-core box and asserted nothing.
    """
    n_cores = visible_cores()
    if n_cores < 4:
        print(
            f"check-sharded: REFUSED — only {n_cores} CPU core(s) visible "
            f"and the sharded gate needs >= 4 to measure parallel speedup. "
            f"Run this gate on a >= 4-core runner; a pass here would be "
            f"meaningless.",
            file=sys.stderr,
        )
        return 1
    status = 0
    base_fps = sharded_rows[0]["fps"]
    for row in sharded_rows[1:]:
        if row["fps"] <= base_fps:
            print(
                f"FAIL: sharded({row['shards']}) must beat sharded(1): "
                f"{row['fps']:.0f} fps <= {base_fps:.0f} fps",
                file=sys.stderr,
            )
            status = 1
    speedup = sharded_rows[-1]["fps"] / base_fps
    if speedup < 2.0:
        print(
            f"FAIL: expected >= 2x at 4 shards, got {speedup:.2f}x",
            file=sys.stderr,
        )
        status = 1
    return status


def _report_sharded(sharded_rows: list[dict], args) -> int:
    """--sharded-only: merge the sharded rows into an existing report."""
    report = {}
    if os.path.exists(args.json):
        try:
            with open(args.json) as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError):
            report = {}
    base_fps = sharded_rows[0]["fps"]
    report.setdefault("meta", {}).update(
        {"cpu_count": os.cpu_count() or 1, "cpu_affinity": visible_cores()}
    )
    report["sharded"] = sharded_rows
    report.setdefault("summary", {})["sharded_speedup_4"] = (
        sharded_rows[-1]["fps"] / base_fps
    )
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.json}")
    if args.check_sharded:
        return _check_sharded_gate(sharded_rows)
    return 0


def benchmark(n_sessions: int, n_frames: int, seed: int = 0) -> dict:
    """One report row: sequential vs batched, and every backend, at
    ``n_sessions``."""
    monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=seed)
    trajectories = [
        make_random_walk_trajectory(n_frames, n_features=N_FEATURES, seed=seed + i)
        for i in range(n_sessions)
    ]
    total_frames = n_sessions * n_frames
    seq_s, _ = run_sequential(monitor, trajectories)
    backends = {}
    for backend in BACKEND_NAMES:
        srv_s, tick_ms = run_service(monitor, trajectories, backend=backend)
        p50, p99 = _percentiles(tick_ms)
        backends[backend] = {
            "sessions": n_sessions,
            "backend": backend,
            "frames": total_frames,
            "fps": total_frames / srv_s,
            "tick_p50_ms": p50,
            "tick_p99_ms": p99,
        }
    reference_fps = backends["reference"]["fps"]
    for row in backends.values():
        row["speedup_vs_reference"] = row["fps"] / reference_fps
    seq_fps = total_frames / seq_s
    return {
        "sessions": n_sessions,
        "frames": total_frames,
        "seq_fps": seq_fps,
        "srv_fps": reference_fps,
        "speedup": reference_fps / seq_fps,
        "tick_p50_ms": backends["reference"]["tick_p50_ms"],
        "tick_p99_ms": backends["reference"]["tick_p99_ms"],
        "backends": backends,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short trajectories for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--frames", type=int, default=None, help="frames per session (override)"
    )
    parser.add_argument(
        "--json",
        default="BENCH_serving.json",
        help="where to write the machine-readable report (default: %(default)s)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the 64-session speedup reaches 3x",
    )
    parser.add_argument(
        "--check-backend",
        action="store_true",
        help=(
            "exit non-zero unless the compiled backend's 64-session drain "
            "throughput reaches the reference backend's (only enforced "
            "when >= 2 CPU cores are visible; shared 1-core runners are "
            "too noisy)"
        ),
    )
    parser.add_argument(
        "--check-sharded",
        action="store_true",
        help=(
            "exit non-zero unless every multi-shard row beats the 1-shard "
            "aggregate fps (sharded(K) > sharded(1)) and 4 shards reach "
            "2x; REFUSES (non-zero) on a box with < 4 visible cores "
            "instead of silently passing"
        ),
    )
    parser.add_argument(
        "--check-resize",
        action="store_true",
        help=(
            "exit non-zero unless a live K=2→4→1 resize under a "
            "64-session load completes with zero fail-safe closures and "
            "zero lost events (only enforced when >= 2 CPU cores are "
            "visible; the resize row is measured either way)"
        ),
    )
    parser.add_argument(
        "--check-balance",
        action="store_true",
        help=(
            "exit non-zero unless a deliberately skewed 64-session load "
            "ends balanced: post-shed max-shard tick p99 within 1.5x the "
            "fleet median, zero fail-safe closures, event streams "
            "bit-identical to an unbalanced single-service run; REFUSES "
            "(non-zero) on a box with < 4 visible cores instead of "
            "silently passing"
        ),
    )
    parser.add_argument(
        "--balance-only",
        action="store_true",
        help=(
            "run only the skewed-load rebalancing scenario (its own CI "
            "step); the row is merged into an existing --json report "
            "when one is present"
        ),
    )
    parser.add_argument(
        "--resize-only",
        action="store_true",
        help=(
            "run only the resize-under-load scenario (its own CI step); "
            "the row is merged into an existing --json report when one "
            "is present"
        ),
    )
    parser.add_argument(
        "--sharded-only",
        action="store_true",
        help=(
            "run only the sharded scaling rows (the >= 4-core CI step); "
            "the rows are merged into an existing --json report when one "
            "is present"
        ),
    )
    args = parser.parse_args(argv)
    if args.frames is not None and args.frames < 1:
        parser.error("--frames must be >= 1")
    n_frames = args.frames if args.frames is not None else (120 if args.smoke else 600)
    n_cores = os.cpu_count() or 1

    if args.resize_only:
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        resize_row = benchmark_resize(monitor_to_bytes(monitor), 64, n_frames)
        return _report_resize(resize_row, args, n_cores, n_frames)

    if args.sharded_only:
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        sharded_rows = _run_sharded_rows(monitor_to_bytes(monitor), n_frames)
        return _report_sharded(sharded_rows, args)

    if args.balance_only:
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        balance_row = benchmark_balance(
            monitor, monitor_to_bytes(monitor), 64, n_frames
        )
        return _report_balance(balance_row, args, n_frames)

    print(f"serving throughput — {n_frames} frames/session, {N_FEATURES} features")
    print(
        f"{'sessions':>8} {'frames':>8} {'seq fps':>10} {'service fps':>12} "
        f"{'speedup':>8} {'tick p50':>9} {'tick p99':>9}"
    )
    rows = [benchmark(n, n_frames) for n in (1, 8, 64)]
    for r in rows:
        print(
            f"{r['sessions']:>8} {r['frames']:>8} {r['seq_fps']:>10.0f} "
            f"{r['srv_fps']:>12.0f} {r['speedup']:>7.1f}x "
            f"{r['tick_p50_ms']:>7.2f}ms {r['tick_p99_ms']:>7.2f}ms"
        )

    speedup_64 = rows[-1]["speedup"]
    print(f"\n64-session batched speedup over sequential streams: {speedup_64:.1f}x")

    print("\ninference backends — same drain workload, per session count")
    print(
        f"{'sessions':>8} {'backend':>14} {'fps':>10} {'vs reference':>12} "
        f"{'tick p50':>9} {'tick p99':>9}"
    )
    backend_rows = []
    for r in rows:
        for backend in BACKEND_NAMES:
            b = r["backends"][backend]
            backend_rows.append(b)
            print(
                f"{b['sessions']:>8} {b['backend']:>14} {b['fps']:>10.0f} "
                f"{b['speedup_vs_reference']:>11.2f}x "
                f"{b['tick_p50_ms']:>7.2f}ms {b['tick_p99_ms']:>7.2f}ms"
            )
    compiled_64 = rows[-1]["backends"]["compiled"]["speedup_vs_reference"]
    print(
        f"\ncompiled over reference at 64 sessions: {compiled_64:.2f}x "
        f"(contract: >= 1.5x on a quiet machine)"
    )

    monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
    monitor_bytes = monitor_to_bytes(monitor)
    sharded_rows = _run_sharded_rows(monitor_bytes, n_frames)
    sharded_speedup = sharded_rows[-1]["fps"] / sharded_rows[0]["fps"]

    resize_row = benchmark_resize(monitor_bytes, 64, n_frames)
    _print_resize_row(resize_row, n_cores)

    report = {
        "meta": {
            "n_frames_per_session": n_frames,
            "n_features": N_FEATURES,
            "smoke": bool(args.smoke),
            "cpu_count": n_cores,
            "cpu_affinity": visible_cores(),
            "backend_names": list(BACKEND_NAMES),
        },
        "service": [
            {k: v for k, v in r.items() if k != "backends"} for r in rows
        ],
        "backends": backend_rows,
        "sharded": sharded_rows,
        "resize": resize_row,
        "summary": {
            "batched_speedup_64": speedup_64,
            "compiled_vs_reference_64": compiled_64,
            "sharded_speedup_4": sharded_speedup,
            "resize_failsafe_closures": resize_row["failsafe_closures"],
        },
    }
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.json}")

    status = 0
    if args.check and speedup_64 < 3.0:
        print("FAIL: expected >= 3x batched speedup", file=sys.stderr)
        status = 1
    if args.check_backend:
        if n_cores < 2:
            print(
                "check-backend: skipped (needs >= 2 cores for a stable "
                "measurement)",
            )
        elif compiled_64 < 1.0:
            print(
                f"FAIL: compiled backend slower than reference at 64 "
                f"sessions ({compiled_64:.2f}x)",
                file=sys.stderr,
            )
            status = 1
    if args.check_sharded:
        status |= _check_sharded_gate(sharded_rows)
    if args.check_resize:
        status |= _check_resize_gate(resize_row, n_cores)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
