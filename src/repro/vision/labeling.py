"""End-to-end vision-based failure detection over a simulated trial.

Reproduces the intent of the paper's automated labeling (Section IV-B,
Figure 7): the block is segmented by colour thresholding and contour
detection, its centroid tracked through the video, and the trace compared
against a fault-free reference demonstration.  Two questions decide the
label:

1. **Where did the block end up?**  A terminal centroid far from the
   reference terminal (the receptacle) means the transfer failed.
2. **When did the block stop moving?**  The block travels while grasped
   and freezes once released.  Freezing well before the reference release
   moment is an unintentional mid-carry drop (block-drop failure);
   freezing at or after the nominal drop moment — yet away from the
   receptacle — means the intended drop never happened (drop-off
   failure).

SSIM (end-state comparison) and DTW (trace deviation) are computed as
corroborating evidence and reported in the label, matching the paper's
use of both techniques.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..simulation.robot import SimulationResult
from .contours import track_centroids
from .dtw import dtw_distance
from .ssim import ssim
from .threshold import threshold_block, to_grayscale


@dataclass(frozen=True)
class VisionLabel:
    """Result of the vision-based failure analysis of one trial.

    ``failure_video_frame`` indexes the 30-fps video stream; use the
    trial's ``video_frame_indices`` to map back to kinematics frames.
    """

    block_drop: bool
    dropoff_failure: bool
    failure_video_frame: int | None
    #: Normalised DTW cost between the trial and reference block traces.
    dtw_deviation: float
    #: SSIM between the trial's and the reference's final frames.
    end_state_ssim: float
    #: Pixel distance between terminal block centroids.
    terminal_distance_px: float


def last_motion_frame(trace: np.ndarray, eps_px: float = 0.75) -> int:
    """Index of the last frame in which the centroid moved more than ``eps_px``.

    Returns 0 when the object never moves.
    """
    trace = np.asarray(trace, dtype=float)
    if trace.ndim != 2 or trace.shape[1] != 2:
        raise ShapeError(f"trace must be (n, 2), got {trace.shape}")
    if trace.shape[0] < 2:
        return 0
    steps = np.linalg.norm(np.diff(trace, axis=0), axis=1)
    moving = np.flatnonzero(steps > eps_px)
    return int(moving[-1] + 1) if moving.size else 0


def detect_failure(
    result: SimulationResult,
    reference: SimulationResult,
    terminal_tolerance_px: float = 2.5,
    early_release_margin: float = 0.08,
) -> VisionLabel:
    """Vision-only failure analysis of a trial against a fault-free reference.

    Parameters
    ----------
    result:
        The (possibly faulty) trial; must carry video frames.
    reference:
        A fault-free trial of the same task for trace comparison.
    terminal_tolerance_px:
        Maximum terminal-centroid distance from the reference delivery
        point for the trial to count as successful.
    early_release_margin:
        How much earlier (as a fraction of video length) than the
        reference release the block must freeze to be called a mid-carry
        drop rather than a failed drop-off.
    """
    if result.video_frames is None or reference.video_frames is None:
        raise ShapeError("both trials must have recorded video")

    trace = track_centroids(result.video_frames, threshold_block)
    ref_trace = track_centroids(reference.video_frames, threshold_block)
    valid = ~np.isnan(trace).any(axis=1)
    ref_valid = ~np.isnan(ref_trace).any(axis=1)
    if not valid.any() or not ref_valid.any():
        raise ShapeError("block was never detected in one of the videos")
    trace = trace[valid]
    ref_trace = ref_trace[ref_valid]

    deviation = dtw_distance(trace, ref_trace, normalize=True)
    end_ssim = ssim(
        to_grayscale(result.video_frames[-1]),
        to_grayscale(reference.video_frames[-1]),
    )
    terminal_distance = float(np.linalg.norm(trace[-1] - ref_trace[-1]))

    if terminal_distance <= terminal_tolerance_px:
        return VisionLabel(
            block_drop=False,
            dropoff_failure=False,
            failure_video_frame=None,
            dtw_deviation=float(deviation),
            end_state_ssim=end_ssim,
            terminal_distance_px=terminal_distance,
        )

    release_frac = last_motion_frame(trace) / max(trace.shape[0] - 1, 1)
    ref_release_frac = last_motion_frame(ref_trace) / max(ref_trace.shape[0] - 1, 1)
    is_early = release_frac < ref_release_frac - early_release_margin
    failure_frame = last_motion_frame(trace) if is_early else None
    return VisionLabel(
        block_drop=is_early,
        dropoff_failure=not is_early,
        failure_video_frame=failure_frame,
        dtw_deviation=float(deviation),
        end_state_ssim=end_ssim,
        terminal_distance_px=terminal_distance,
    )
