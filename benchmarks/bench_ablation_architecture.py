"""Ablation benchmark: 1D-CNN vs LSTM error classifiers (paper §VI).

The paper finds 1D-CNNs better than LSTMs for the erroneous-gesture
step; this ablation reproduces the comparison with matched budgets.
"""

from conftest import run_once

from repro.eval.reports import format_table
from repro.experiments.common import get_scale
from repro.experiments.table5 import _evaluate_setup
from repro.config import WindowConfig
from repro.jigsaws.synthesis import make_suturing_dataset


def test_ablation_architecture(benchmark, scale):
    preset = get_scale(scale)
    dataset = make_suturing_dataset(n_demos=preset.suturing_demos, rng=0)

    def compare():
        train, test = dataset.split_by_trials(2)
        out = {}
        for architecture in ("conv", "lstm"):
            out[architecture] = _evaluate_setup(
                train,
                test,
                preset,
                architecture=architecture,
                features="CRG",
                gesture_specific=True,
                seed=0,
                window=WindowConfig(5, 1),
            )
        return out

    results = run_once(benchmark, compare)
    print()
    rows = [
        [name, f"{m.tpr:.2f}", f"{m.tnr:.2f}", f"{m.f1:.2f}"]
        for name, m in results.items()
    ]
    print(
        format_table(
            ["architecture", "TPR", "TNR", "F1"],
            rows,
            title="Ablation: 1D-CNN vs LSTM gesture-specific error classifiers",
        )
    )
    # Both families learn; the paper's winner (conv) must be competitive.
    conv, lstm = results["conv"], results["lstm"]
    assert conv.f1 > 0.3
    assert conv.f1 > lstm.f1 - 0.15
