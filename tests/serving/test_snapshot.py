"""Tests for whole-monitor snapshots (worker bootstrap archives)."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.errors import ConfigurationError, NotFittedError
from repro.gestures.vocabulary import Gesture
from repro.serving import (
    make_random_walk_trajectory,
    make_synthetic_monitor,
    monitor_from_bytes,
    monitor_to_bytes,
    snapshot_backend,
)

N_FEATURES = 10


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_process_parity(self, seed):
        """A restored monitor is bit-identical at inference time."""
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=seed)
        restored = monitor_from_bytes(monitor_to_bytes(monitor))
        trajectory = make_random_walk_trajectory(
            90, n_features=N_FEATURES, seed=seed + 10
        )
        a = monitor.process(trajectory)
        b = restored.process(trajectory)
        assert np.array_equal(a.gestures, b.gestures)
        assert np.array_equal(a.unsafe_scores, b.unsafe_scores)
        assert np.array_equal(a.unsafe_flags, b.unsafe_flags)

    def test_stream_parity(self):
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=2)
        restored = monitor_from_bytes(monitor_to_bytes(monitor))
        trajectory = make_random_walk_trajectory(
            60, n_features=N_FEATURES, seed=3
        )
        for original, copy in zip(
            monitor.stream(trajectory), restored.stream(trajectory)
        ):
            assert original[:3] == copy[:3]  # frame, gesture, score

    def test_configuration_survives(self):
        monitor = make_synthetic_monitor(
            n_features=N_FEATURES,
            seed=0,
            gesture_window=WindowConfig(4, 1),
            error_window=WindowConfig(7, 2),
            missing_gestures=(2, 9),
            threshold=0.25,
        )
        restored = monitor_from_bytes(monitor_to_bytes(monitor))
        assert restored.threshold == 0.25
        assert restored.config.gesture_window == WindowConfig(4, 1)
        assert restored.config.error_window == WindowConfig(7, 2)
        assert restored.gesture_classifier.config.window == WindowConfig(4, 1)
        assert Gesture.G2 in restored.library.constant_gestures
        assert not restored.library.has_classifier(Gesture.G2)
        assert sorted(map(int, restored.library.classifiers)) == sorted(
            map(int, monitor.library.classifiers)
        )
        for gesture, clf in monitor.library.classifiers.items():
            assert restored.library.classifiers[gesture].threshold == clf.threshold

    def test_snapshot_is_deterministic(self):
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=4)
        assert monitor_to_bytes(monitor) == monitor_to_bytes(monitor)


class TestBackendChoice:
    def test_backend_round_trips(self):
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        blob = monitor_to_bytes(monitor, backend="compiled-f32")
        assert snapshot_backend(blob) == "compiled-f32"
        # The embedded choice does not disturb the model payload.
        restored = monitor_from_bytes(blob)
        trajectory = make_random_walk_trajectory(40, n_features=N_FEATURES, seed=1)
        a, b = monitor.process(trajectory), restored.process(trajectory)
        assert np.array_equal(a.unsafe_scores, b.unsafe_scores)

    @pytest.mark.parametrize("backend", ["compiled", "compiled-f32"])
    def test_compiled_backend_service_round_trip(self, backend):
        """A restored monitor drives a CompiledBackend service (float32
        included) identically to the original: the snapshot carries
        everything the compile step folds (weights, scalers, windows),
        so serving bit-equality survives serialisation."""
        from repro.serving import MonitorService

        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=5)
        blob = monitor_to_bytes(monitor, backend=backend)
        assert snapshot_backend(blob) == backend
        restored = monitor_from_bytes(blob)
        trajectory = make_random_walk_trajectory(
            50, n_features=N_FEATURES, seed=6
        )
        events = {}
        for key, source in (("original", monitor), ("restored", restored)):
            service = MonitorService(source, max_sessions=2, backend=backend)
            service.open_session("s")
            service.feed("s", trajectory.frames)
            events[key] = service.drain()
        assert [
            (e.frame_index, e.gesture, e.score, e.flag)
            for e in events["original"]
        ] == [
            (e.frame_index, e.gesture, e.score, e.flag)
            for e in events["restored"]
        ]

    def test_backend_defaults_to_none(self):
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        assert snapshot_backend(monitor_to_bytes(monitor)) is None

    def test_unknown_backend_rejected_at_serialisation(self):
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        with pytest.raises(ConfigurationError, match="unknown inference backend"):
            monitor_to_bytes(monitor, backend="turbo")


class TestValidation:
    def test_untrained_monitor_rejected(self):
        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        monitor.gesture_classifier.model = None
        with pytest.raises(NotFittedError):
            monitor_to_bytes(monitor)

    def test_unknown_version_rejected(self):
        import io
        import json

        import numpy as np_

        monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
        blob = monitor_to_bytes(monitor)
        with np_.load(io.BytesIO(blob)) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays["__meta__"]).decode("utf-8"))
        meta["version"] = 999
        arrays["__meta__"] = np_.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np_.uint8
        ).copy()
        buffer = io.BytesIO()
        np_.savez(buffer, **arrays)
        with pytest.raises(ConfigurationError):
            monitor_from_bytes(buffer.getvalue())
