"""Loss functions with fused output activations.

Softmax + categorical cross-entropy (gesture classification) and sigmoid +
binary cross-entropy (erroneous-gesture detection) are fused so the
gradient through the output layer is the numerically-stable
``probabilities - targets`` form.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .layers.activations import sigmoid, softmax

_EPS = 1e-12


class Loss:
    """Interface: ``value`` (scalar loss), ``gradient`` (wrt logits) and
    ``predict`` (logits -> probabilities)."""

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""
        raise NotImplementedError

    def gradient(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of :meth:`value` with respect to ``logits``."""
        raise NotImplementedError

    def predict(self, logits: np.ndarray) -> np.ndarray:
        """Map raw model outputs to probabilities."""
        raise NotImplementedError


class SoftmaxCrossEntropy(Loss):
    """Softmax activation + categorical cross-entropy.

    ``logits`` has shape ``(batch, n_classes)``; ``targets`` is either a
    one-hot array of the same shape or an integer class vector
    ``(batch,)``.
    """

    def _as_one_hot(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        targets = np.asarray(targets)
        if targets.ndim == 1:
            one_hot = np.zeros_like(logits)
            if targets.min(initial=0) < 0 or targets.max(initial=0) >= logits.shape[1]:
                raise ShapeError(
                    f"class indices out of range for {logits.shape[1]} classes"
                )
            one_hot[np.arange(logits.shape[0]), targets.astype(int)] = 1.0
            return one_hot
        if targets.shape != logits.shape:
            raise ShapeError(
                f"targets shape {targets.shape} does not match logits {logits.shape}"
            )
        return targets.astype(float)

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits = np.asarray(logits, dtype=float)
        one_hot = self._as_one_hot(logits, targets)
        probs = softmax(logits)
        return float(-(one_hot * np.log(probs + _EPS)).sum(axis=1).mean())

    def gradient(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        logits = np.asarray(logits, dtype=float)
        one_hot = self._as_one_hot(logits, targets)
        probs = softmax(logits)
        return (probs - one_hot) / logits.shape[0]

    def predict(self, logits: np.ndarray) -> np.ndarray:
        return softmax(np.asarray(logits, dtype=float))


class SigmoidBinaryCrossEntropy(Loss):
    """Sigmoid activation + binary cross-entropy with optional class weights.

    ``logits`` has shape ``(batch, 1)`` or ``(batch,)``; ``targets`` is a
    binary vector.  ``positive_weight`` scales the loss of positive
    examples, the standard remedy for the class imbalance of the
    erroneous-gesture datasets (paper Table VII shows error rates from 4%
    to 79%).
    """

    def __init__(self, positive_weight: float = 1.0) -> None:
        if positive_weight <= 0.0:
            raise ShapeError("positive_weight must be positive")
        self.positive_weight = float(positive_weight)

    def _flatten(
        self, logits: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        logits = np.asarray(logits, dtype=float).reshape(-1)
        targets = np.asarray(targets, dtype=float).reshape(-1)
        if logits.shape != targets.shape:
            raise ShapeError(
                f"logits {logits.shape} and targets {targets.shape} disagree"
            )
        return logits, targets

    def _weights(self, targets: np.ndarray) -> np.ndarray:
        return np.where(targets > 0.5, self.positive_weight, 1.0)

    def value(self, logits: np.ndarray, targets: np.ndarray) -> float:
        logits, targets = self._flatten(logits, targets)
        probs = sigmoid(logits)
        weights = self._weights(targets)
        losses = -(
            targets * np.log(probs + _EPS) + (1.0 - targets) * np.log(1.0 - probs + _EPS)
        )
        return float((weights * losses).mean())

    def gradient(self, logits: np.ndarray, targets: np.ndarray) -> np.ndarray:
        original_shape = np.asarray(logits).shape
        logits, targets = self._flatten(logits, targets)
        probs = sigmoid(logits)
        weights = self._weights(targets)
        grad = weights * (probs - targets) / logits.shape[0]
        return grad.reshape(original_shape)

    def predict(self, logits: np.ndarray) -> np.ndarray:
        return sigmoid(np.asarray(logits, dtype=float))
