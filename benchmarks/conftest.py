"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure and prints its rows.
The data/model scale is selected with the ``REPRO_BENCH_SCALE``
environment variable (``smoke`` | ``fast`` | ``full``); the default
``smoke`` keeps the whole suite in CPU-minutes.  Training-based
benchmarks run a single round (they are experiments, not microbenchmarks).
"""

from __future__ import annotations

import os

import pytest


def bench_scale() -> str:
    """Scale preset for this benchmark session."""
    return os.environ.get("REPRO_BENCH_SCALE", "smoke")


@pytest.fixture(scope="session")
def scale() -> str:
    """The selected scale preset name."""
    return bench_scale()


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
