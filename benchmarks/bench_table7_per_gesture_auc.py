"""Benchmark: regenerate paper Table VII (per-gesture classifier AUCs).

Prints train/test sizes, error prevalence and AUC per gesture class for
both tasks.  The paper's detectability ordering must hold: G4 and G6 are
the best-detected Suturing gestures, G2 the worst.
"""

import numpy as np
from conftest import run_once

from repro.experiments import table7
from repro.gestures.vocabulary import Gesture


def test_table7_per_gesture_auc(benchmark, scale):
    rows = run_once(benchmark, lambda: table7.run(scale=scale, seed=0))
    print()
    print(table7.render(rows))

    suturing = {
        r.gesture: r.auc
        for r in rows
        if r.task == "suturing" and not np.isnan(r.auc)
    }
    # Paper ordering: G4/G6 ~0.93 dominate; G2 ~0.50 is worst.
    if Gesture.G4 in suturing and Gesture.G2 in suturing:
        assert suturing[Gesture.G4] > suturing[Gesture.G2]
    if Gesture.G6 in suturing and Gesture.G2 in suturing:
        assert suturing[Gesture.G6] > suturing[Gesture.G2]
    # Error prevalences must follow Table VII's profile.
    prevalence = {r.gesture: r.train_error_pct for r in rows if r.task == "suturing"}
    if Gesture.G4 in prevalence and Gesture.G5 in prevalence:
        assert prevalence[Gesture.G4] > prevalence[Gesture.G5]
