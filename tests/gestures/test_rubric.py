"""Tests for repro.gestures.rubric (paper Table II)."""

from repro.gestures.rubric import (
    ERROR_RUBRIC,
    ErrorMode,
    FaultCause,
    error_modes_for,
    gestures_with_errors,
)
from repro.gestures.vocabulary import Gesture


class TestRubricContents:
    def test_g10_has_no_errors(self):
        # Paper: "there were no common errors in G10".
        assert error_modes_for(Gesture.G10) == ()

    def test_g2_multiple_attempts(self):
        specs = error_modes_for(Gesture.G2)
        assert [s.mode for s in specs] == [ErrorMode.MULTIPLE_ATTEMPTS]
        assert FaultCause.WRONG_ROTATION in specs[0].causes

    def test_g4_has_two_modes(self):
        modes = {s.mode for s in error_modes_for(Gesture.G4)}
        assert modes == {ErrorMode.NEEDLE_DROP, ErrorMode.OUT_OF_VIEW}

    def test_g5_cause_is_high_grasper(self):
        (spec,) = error_modes_for(Gesture.G5)
        assert spec.causes == (FaultCause.HIGH_GRASPER_ANGLE,)

    def test_g11_failure_to_dropoff(self):
        (spec,) = error_modes_for(Gesture.G11)
        assert spec.mode == ErrorMode.FAILURE_TO_DROPOFF
        assert spec.causes == (FaultCause.LOW_GRASPER_ANGLE,)

    def test_gestures_with_errors_sorted(self):
        gestures = gestures_with_errors()
        assert list(gestures) == sorted(gestures, key=int)
        assert Gesture.G10 not in gestures
        assert Gesture.G7 not in gestures

    def test_every_entry_has_cause(self):
        assert all(spec.causes for spec in ERROR_RUBRIC)

    def test_table_ii_gesture_coverage(self):
        covered = {spec.gesture for spec in ERROR_RUBRIC}
        expected = {
            Gesture.G1,
            Gesture.G2,
            Gesture.G3,
            Gesture.G4,
            Gesture.G5,
            Gesture.G6,
            Gesture.G8,
            Gesture.G9,
            Gesture.G11,
            Gesture.G12,
        }
        assert covered == expected
