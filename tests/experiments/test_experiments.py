"""Tests for the experiment harness (scales, shared builders, renderers)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.experiments import SCALES, get_scale
from repro.experiments.common import make_blocktransfer_dataset
from repro.experiments.table3 import Table3Row


class TestScales:
    def test_presets_exist(self):
        assert set(SCALES) == {"smoke", "fast", "full"}

    def test_get_scale_by_name(self):
        assert get_scale("fast").name == "fast"

    def test_get_scale_passthrough(self):
        preset = SCALES["smoke"]
        assert get_scale(preset) is preset

    def test_unknown_scale_raises(self):
        with pytest.raises(ConfigurationError):
            get_scale("galactic")

    def test_full_scale_matches_paper_sizes(self):
        full = get_scale("full")
        assert full.suturing_demos == 39
        assert full.campaign_scale == 1.0

    def test_configs_constructible(self):
        for preset in SCALES.values():
            gcfg = preset.gesture_config()
            assert gcfg.lstm_units == preset.gesture_lstm
            ecfg = preset.error_config("lstm")
            assert ecfg.architecture == "lstm"
            bcfg = preset.error_config(for_baseline=True)
            assert bcfg.max_train_windows == preset.baseline_max_windows


class TestBlockTransferDataset:
    @pytest.fixture(scope="class")
    def dataset(self):
        return make_blocktransfer_dataset("smoke", seed=0, n_fault_free=6)

    def test_contains_clean_and_faulty(self, dataset):
        faulty = [d for d in dataset if d.trajectory.metadata.get("faulty")]
        clean = [d for d in dataset if not d.trajectory.metadata.get("faulty")]
        assert faulty and clean

    def test_faulty_demos_have_unsafe_frames(self, dataset):
        flagged = [
            d
            for d in dataset
            if d.trajectory.metadata.get("faulty") and d.trajectory.unsafe.any()
        ]
        assert flagged  # campaign produced at least one manifest error

    def test_jigsaws_feature_width(self, dataset):
        for demo in dataset:
            assert demo.trajectory.n_features == 38

    def test_loso_splittable(self, dataset):
        train, test = dataset.split_by_trials(2)
        assert len(train) and len(test)


class TestRowHelpers:
    def test_table3_row_percentages(self):
        row = Table3Row(
            grasper_rad=(0.9, 1.0),
            grasper_window=(0.55, 0.7),
            cartesian_dev=(3000.0, 6000.0),
            cartesian_window=(0.5, 0.6),
            n_injections=10,
            block_drops=5,
            dropoff_failures=2,
            wrong_positions=0,
        )
        assert row.block_drop_pct == pytest.approx(50.0)
        assert row.dropoff_pct == pytest.approx(20.0)


class TestCLI:
    def test_main_runs_figure3(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["figure3", "--scale", "smoke", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "Figure 3" in out

    def test_main_rejects_unknown(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table42"])
