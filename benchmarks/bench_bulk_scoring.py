"""Benchmark: bulk offline scoring vs the looped batched pipeline.

The bulk engine (:mod:`repro.serving.bulk`) is the offline counterpart
of the serving tick loop: every sliding window of a whole recorded
procedure materialised as one zero-copy strided view, each pipeline
stage run once over the full ``(n_windows, window, features)`` batch —
one GEMM per Dense stage on the compiled backends — and the
post-processing (per-gesture dispatch, forward-fill, thresholding)
fully vectorised.

The monitor under test carries the **paper's full-scale gesture stage**
(stacked LSTM 512+96, 64-unit head — Yasar & Alemzadeh Section III)
rather than the CPU-instant widths the parity tests use: the
one-GEMM-per-stage claim is about deployed model sizes, where the
recurrent projections dominate and BLAS efficiency is the whole story.
The table compares, over the same set of synthetic procedures:

- ``looped`` — the reference :meth:`SafetyMonitor.process` exactly as
  the experiments called it before this engine existed (batch-invariant
  einsum inference, one trajectory at a time);
- ``bulk`` per inference backend (:mod:`repro.nn.backends`):
  ``reference`` (bit-identical outputs, same einsum float ops — this
  row isolates the windowing/post-processing win), ``compiled`` and
  ``compiled-f32`` (folded-scaler BLAS plans sized to the procedure —
  these rows buy the one-GEMM-per-stage throughput).

The committed contract (``--check-bulk``, gated in the perf CI job) is
**compiled bulk >= 10x looped reference throughput**, judged on the
best compiled plan (``compiled-f32`` in practice; the float64 plan is
reported alongside and typically lands at 5-7x, bounded by the
einsum-vs-BLAS gap at double precision).  Plan compilation is a
one-time cost per (model, backend) pair and is warmed up outside the
timed region, exactly as a campaign or table run amortises it.  On a
box with < 2 visible cores the gate REFUSES (exits non-zero) with a
loud message rather than silently passing — a degraded row measures
scheduler noise, not the engine; every row records ``cpu_count`` /
``cpu_affinity`` and carries ``degraded`` so a committed number can
never hide the machine it came from.

Every run writes a machine-readable ``BENCH_bulk.json`` (``--json``
overrides the path) so the perf trajectory is tracked across PRs; CI
uploads it as an artifact.

Run:  PYTHONPATH=src python benchmarks/bench_bulk_scoring.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.nn.backends import BACKEND_NAMES
from repro.serving import (
    BulkScorer,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)

N_FEATURES = 38

#: The committed throughput contract: compiled bulk over looped reference.
BULK_SPEEDUP_CONTRACT = 10.0


def visible_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1


def run_looped(monitor, trajectories) -> float:
    """Seconds for the pre-bulk path: one ``process()`` per procedure."""
    start = time.perf_counter()
    for trajectory in trajectories:
        monitor.process(trajectory)
    return time.perf_counter() - start


def run_bulk(monitor, trajectories, backend: str) -> float:
    """Seconds for a bulk sweep, compiled plans warmed up beforehand."""
    scorer = BulkScorer(monitor, backend=backend)
    scorer.score(trajectories[0])  # one-time plan compilation + warm-up
    start = time.perf_counter()
    scorer.score_many(trajectories)
    return time.perf_counter() - start


def _machine_fields(row: dict) -> dict:
    """Attach the CPU budget a row was measured under."""
    affinity = visible_cores()
    row.update(
        cpu_count=os.cpu_count() or 1,
        cpu_affinity=affinity,
        degraded=affinity < 2,
    )
    return row


def benchmark(n_procedures: int, n_frames: int, seed: int = 0) -> dict:
    """The full comparison table over one set of procedures."""
    monitor = make_synthetic_monitor(
        n_features=N_FEATURES,
        seed=seed,
        # The paper's deployed architecture: stacked LSTM 512+96 gesture
        # stage, two-layer conv error classifiers.
        gesture_lstm_units=(512, 96),
        gesture_dense_units=64,
        hidden=(32, 16),
    )
    trajectories = [
        make_random_walk_trajectory(n_frames, n_features=N_FEATURES, seed=seed + i)
        for i in range(n_procedures)
    ]
    total_frames = n_procedures * n_frames

    looped_s = run_looped(monitor, trajectories)
    looped_fps = total_frames / looped_s
    rows = [
        _machine_fields(
            {
                "engine": "looped",
                "backend": "reference",
                "procedures": n_procedures,
                "frames": total_frames,
                "fps": looped_fps,
                "speedup_vs_looped": 1.0,
            }
        )
    ]
    for backend in BACKEND_NAMES:
        bulk_s = run_bulk(monitor, trajectories, backend)
        fps = total_frames / bulk_s
        rows.append(
            _machine_fields(
                {
                    "engine": "bulk",
                    "backend": backend,
                    "procedures": n_procedures,
                    "frames": total_frames,
                    "fps": fps,
                    "speedup_vs_looped": fps / looped_fps,
                }
            )
        )
    return {
        "procedures": n_procedures,
        "frames_per_procedure": n_frames,
        "rows": rows,
    }


def _bulk_row(result: dict, backend: str) -> dict:
    return next(
        r
        for r in result["rows"]
        if r["engine"] == "bulk" and r["backend"] == backend
    )


def _best_compiled(result: dict) -> dict:
    """The fastest compiled-plan bulk row (the gate's subject)."""
    return max(
        (_bulk_row(result, name) for name in ("compiled", "compiled-f32")),
        key=lambda r: r["fps"],
    )


def _check_bulk_gate(result: dict) -> int:
    """The CI gate behind ``--check-bulk``.

    REFUSES on a box with < 2 visible cores — a pass measured while the
    benchmark time-slices one core with the rest of the runner would be
    meaningless — and otherwise enforces the committed contract: the
    best compiled bulk plan >= 10x looped reference throughput.
    """
    n_cores = visible_cores()
    if n_cores < 2:
        print(
            f"check-bulk: REFUSED — only {n_cores} CPU core(s) visible and "
            f"the bulk gate needs >= 2 for a stable measurement. Run this "
            f"gate on a >= 2-core runner; a pass here would be meaningless.",
            file=sys.stderr,
        )
        return 1
    best = _best_compiled(result)
    speedup = best["speedup_vs_looped"]
    if speedup < BULK_SPEEDUP_CONTRACT:
        print(
            f"FAIL: compiled bulk ({best['backend']}) must reach >= "
            f"{BULK_SPEEDUP_CONTRACT:.0f}x looped reference throughput, "
            f"got {speedup:.1f}x ({best['fps']:.0f} fps vs looped "
            f"{result['rows'][0]['fps']:.0f} fps)",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short procedures for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--frames", type=int, default=None, help="frames per procedure (override)"
    )
    parser.add_argument(
        "--procedures", type=int, default=None, help="number of procedures (override)"
    )
    parser.add_argument(
        "--json",
        default="BENCH_bulk.json",
        help="where to write the machine-readable report (default: %(default)s)",
    )
    parser.add_argument(
        "--check-bulk",
        action="store_true",
        help=(
            "exit non-zero unless the best compiled bulk plan reaches "
            ">= 10x the looped reference throughput; REFUSES (non-zero) "
            "on a box with < 2 visible cores instead of silently passing"
        ),
    )
    args = parser.parse_args(argv)
    if args.frames is not None and args.frames < 1:
        parser.error("--frames must be >= 1")
    if args.procedures is not None and args.procedures < 1:
        parser.error("--procedures must be >= 1")
    n_frames = args.frames if args.frames is not None else (400 if args.smoke else 1500)
    n_procedures = (
        args.procedures if args.procedures is not None else (2 if args.smoke else 4)
    )

    print(
        f"bulk offline scoring — {n_procedures} procedures x {n_frames} "
        f"frames, {N_FEATURES} features, {visible_cores()} CPU core(s) visible"
    )
    result = benchmark(n_procedures, n_frames)
    print(
        f"{'engine':>8} {'backend':>14} {'frames':>8} {'fps':>12} "
        f"{'vs looped':>10}"
    )
    for r in result["rows"]:
        degraded = "  [degraded]" if r["degraded"] else ""
        print(
            f"{r['engine']:>8} {r['backend']:>14} {r['frames']:>8} "
            f"{r['fps']:>12.0f} {r['speedup_vs_looped']:>9.1f}x{degraded}"
        )
    best = _best_compiled(result)
    print(
        f"\nbest compiled bulk ({best['backend']}) over looped reference: "
        f"{best['speedup_vs_looped']:.1f}x "
        f"(contract: >= {BULK_SPEEDUP_CONTRACT:.0f}x)"
    )

    report = {
        "meta": {
            "n_procedures": n_procedures,
            "n_frames_per_procedure": n_frames,
            "n_features": N_FEATURES,
            "smoke": bool(args.smoke),
            "cpu_count": os.cpu_count() or 1,
            "cpu_affinity": visible_cores(),
            "backend_names": list(BACKEND_NAMES),
            "speedup_contract": BULK_SPEEDUP_CONTRACT,
        },
        "bulk": result["rows"],
        "summary": {
            "looped_fps": result["rows"][0]["fps"],
            "bulk_reference_speedup": _bulk_row(result, "reference")[
                "speedup_vs_looped"
            ],
            "bulk_compiled_speedup": _bulk_row(result, "compiled")[
                "speedup_vs_looped"
            ],
            "bulk_compiled_f32_speedup": _bulk_row(result, "compiled-f32")[
                "speedup_vs_looped"
            ],
            "bulk_best_compiled_speedup": best["speedup_vs_looped"],
            "bulk_best_compiled_backend": best["backend"],
        },
    }
    with open(args.json, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"\nwrote {args.json}")

    if args.check_bulk:
        return _check_bulk_gate(result)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
