"""ROC curves and AUC.

The paper reports the AUC of the anomaly (unsafe) class per gesture
(Table VII) and of the negative class for the overall pipeline, plus
best/median/worst ROC curves per demonstration (Figure 9).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError


def roc_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve of a binary classifier.

    Parameters
    ----------
    y_true:
        Binary labels (1 = positive class).
    scores:
        Classifier scores; higher means more positive.

    Returns
    -------
    fpr, tpr, thresholds
        Arrays of equal length; thresholds are in decreasing order with a
        leading ``+inf`` sentinel (so the first point is (0, 0)).
    """
    y_true = np.asarray(y_true).astype(int).reshape(-1)
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if y_true.shape != scores.shape:
        raise ShapeError(f"y_true {y_true.shape} and scores {scores.shape} disagree")
    if y_true.size == 0:
        raise ShapeError("empty inputs")
    if not np.isin(y_true, (0, 1)).all():
        raise ShapeError("y_true must be binary (0/1)")
    n_pos = int((y_true == 1).sum())
    n_neg = int((y_true == 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise ShapeError("ROC needs at least one positive and one negative")

    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]

    # Cumulative counts at each distinct threshold.
    distinct = np.flatnonzero(np.diff(sorted_scores)) if scores.size > 1 else np.array([], dtype=int)
    cut_indices = np.concatenate([distinct, [y_true.size - 1]])
    tp_cum = np.cumsum(sorted_true)[cut_indices]
    fp_cum = (cut_indices + 1) - tp_cum

    tpr = np.concatenate([[0.0], tp_cum / n_pos])
    fpr = np.concatenate([[0.0], fp_cum / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[cut_indices]])
    return fpr, tpr, thresholds


def auc_score(y_true: np.ndarray, scores: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal rule)."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))
