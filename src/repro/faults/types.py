"""Fault specifications.

A fault is defined (paper Section IV-B) by the targeted state variable
``V``, the injected value ``S'`` and the injection duration ``D`` given as
a fraction of the trajectory.  Table III reports durations as trajectory
intervals (e.g. grasper faults active over 0.55-0.70 of the trajectory),
which is how :class:`FaultWindow` represents them.

Units note: the paper's simulator reports Cartesian deviations in its own
milli-units (3,000-65,000); this reproduction's workspace is a +/-100 mm
table, so deviations are scaled by :data:`CARTESIAN_UNIT_SCALE` (1/1000) —
the same relative magnitudes against the receptacle radius.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FaultInjectionError

#: Scale between the paper's Cartesian deviation units and our millimetres.
CARTESIAN_UNIT_SCALE = 1.0 / 1000.0


@dataclass(frozen=True)
class FaultWindow:
    """Active interval of a fault, as fractions of the trajectory length."""

    start_frac: float
    end_frac: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.start_frac < self.end_frac <= 1.0:
            raise FaultInjectionError(
                f"invalid fault window [{self.start_frac}, {self.end_frac}]"
            )

    def to_frames(self, n_frames: int) -> tuple[int, int]:
        """Frame interval ``[start, end)`` over ``n_frames`` samples."""
        start = int(np.floor(self.start_frac * n_frames))
        end = int(np.ceil(self.end_frac * n_frames))
        return max(0, start), min(n_frames, max(end, start + 1))

    @property
    def duration_frac(self) -> float:
        """Fraction of the trajectory the fault is active."""
        return self.end_frac - self.start_frac


@dataclass(frozen=True)
class GrasperAngleFault:
    """Perturbation of the commanded jaw angle.

    During the window the command ramps by a constant per-step increment
    toward ``target_rad`` (the paper's "constant value of theta ... until
    the target value S' was reached") and holds there until the window
    closes; afterwards the nominal command resumes.
    """

    target_rad: float
    window: FaultWindow
    #: Fraction of the window spent ramping before the target is held.
    ramp_frac: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 < self.target_rad < np.pi:
            raise FaultInjectionError(
                f"grasper target must be in (0, pi) rad, got {self.target_rad}"
            )
        if not 0.0 < self.ramp_frac <= 1.0:
            raise FaultInjectionError("ramp_frac must be in (0, 1]")


@dataclass(frozen=True)
class CartesianFault:
    """Uniform positive deviation of the commanded tip position.

    The target deviation ``deviation_mm`` is the Euclidean distance
    between nominal and faulty positions; it is realised by adding
    ``deviation_mm / sqrt(3)`` to each of x, y and z (paper Figure 6c),
    ramped in over ``ramp_frac`` of the window.
    """

    deviation_mm: float
    window: FaultWindow
    ramp_frac: float = 0.2

    def __post_init__(self) -> None:
        if self.deviation_mm <= 0.0:
            raise FaultInjectionError("deviation must be positive")
        if not 0.0 < self.ramp_frac <= 1.0:
            raise FaultInjectionError("ramp_frac must be in (0, 1]")

    @property
    def per_axis_mm(self) -> float:
        """Deviation added to each axis."""
        return self.deviation_mm / np.sqrt(3.0)


@dataclass(frozen=True)
class FaultSpec:
    """A complete injection: optional grasper and Cartesian components.

    Table III cells inject both variables simultaneously; single-variable
    faults leave the other component ``None``.
    """

    grasper: GrasperAngleFault | None = None
    cartesian: CartesianFault | None = None

    def __post_init__(self) -> None:
        if self.grasper is None and self.cartesian is None:
            raise FaultInjectionError("a FaultSpec needs at least one component")

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = []
        if self.grasper is not None:
            parts.append(
                f"grasper->{self.grasper.target_rad:.2f}rad@"
                f"[{self.grasper.window.start_frac:.2f},{self.grasper.window.end_frac:.2f}]"
            )
        if self.cartesian is not None:
            parts.append(
                f"cartesian+{self.cartesian.deviation_mm:.1f}mm@"
                f"[{self.cartesian.window.start_frac:.2f},{self.cartesian.window.end_frac:.2f}]"
            )
        return " & ".join(parts)
