"""Tele-operation operator model.

The paper's fault-free demonstrations were produced by two human subjects
tele-operating the simulated Raven II.  :class:`OperatorProfile` captures
the per-subject variability that matters for the downstream learning
problem: hand tremor (band-limited noise added to commanded positions),
speed (scaling segment durations) and waypoint imprecision (small offsets
on reach targets).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import as_generator
from ..errors import ConfigurationError


@dataclass(frozen=True)
class OperatorProfile:
    """Synthetic human-operator characteristics.

    Attributes
    ----------
    name:
        Subject identifier carried into demonstration metadata.
    tremor_amplitude_mm:
        Standard deviation of the band-limited positional tremor.
    tremor_smoothing:
        Exponential-smoothing coefficient in (0, 1); higher = smoother,
        lower-frequency tremor.
    speed_factor:
        Multiplier on nominal segment durations (> 1 is slower).
    waypoint_jitter_mm:
        Standard deviation of per-waypoint target offsets.
    grasper_noise_rad:
        Standard deviation of grasper-angle command noise.
    """

    name: str = "subject_a"
    tremor_amplitude_mm: float = 0.6
    tremor_smoothing: float = 0.9
    speed_factor: float = 1.0
    waypoint_jitter_mm: float = 2.0
    grasper_noise_rad: float = 0.02

    def __post_init__(self) -> None:
        if self.tremor_amplitude_mm < 0:
            raise ConfigurationError("tremor_amplitude_mm must be >= 0")
        if not 0.0 < self.tremor_smoothing < 1.0:
            raise ConfigurationError("tremor_smoothing must be in (0, 1)")
        if self.speed_factor <= 0:
            raise ConfigurationError("speed_factor must be positive")
        if self.waypoint_jitter_mm < 0:
            raise ConfigurationError("waypoint_jitter_mm must be >= 0")
        if self.grasper_noise_rad < 0:
            raise ConfigurationError("grasper_noise_rad must be >= 0")

    def tremor(
        self,
        n_steps: int,
        dims: int,
        rng: int | np.random.Generator | None,
    ) -> np.ndarray:
        """Band-limited tremor noise of shape ``(n_steps, dims)``.

        White noise passed through a first-order low-pass filter, scaled
        to the profile's amplitude.
        """
        gen = as_generator(rng)
        white = gen.standard_normal((n_steps, dims))
        smooth = np.empty_like(white)
        state = np.zeros(dims)
        alpha = self.tremor_smoothing
        for t in range(n_steps):
            state = alpha * state + (1.0 - alpha) * white[t]
            smooth[t] = state
        std = smooth.std()
        if std > 1e-12:
            smooth = smooth / std * self.tremor_amplitude_mm
        return smooth

    def jitter_waypoints(
        self,
        waypoints: np.ndarray,
        rng: int | np.random.Generator | None,
        frozen: set[int] | None = None,
    ) -> np.ndarray:
        """Apply per-waypoint Gaussian offsets (horizontal components only).

        ``frozen`` lists waypoint indices that must stay exact (e.g. the
        grasp point must still reach the block).
        """
        gen = as_generator(rng)
        out = np.asarray(waypoints, dtype=float).copy()
        frozen = frozen or set()
        for i in range(out.shape[0]):
            if i in frozen:
                continue
            out[i, :2] += gen.normal(0.0, self.waypoint_jitter_mm, size=2)
        return out


#: The two synthetic subjects used for fault-free demonstrations
#: (the paper collected data from 2 human subjects).
DEFAULT_OPERATORS: tuple[OperatorProfile, OperatorProfile] = (
    OperatorProfile(
        name="subject_a",
        tremor_amplitude_mm=0.5,
        tremor_smoothing=0.90,
        speed_factor=1.0,
        waypoint_jitter_mm=1.5,
        grasper_noise_rad=0.015,
    ),
    OperatorProfile(
        name="subject_b",
        tremor_amplitude_mm=0.9,
        tremor_smoothing=0.85,
        speed_factor=1.2,
        waypoint_jitter_mm=2.5,
        grasper_noise_rad=0.03,
    ),
)
