"""Remote ingest demo: a gateway serving N concurrent socket clients.

Boots a :class:`repro.serving.MonitorGateway` (choose the embedded
engine with ``--shards 1`` or a sharded worker fleet with ``--shards 2+``)
and drives it the way a robot fleet would: one
:class:`AsyncRemoteMonitorClient` TCP connection per operating theatre,
each streaming its synthetic procedure in ~1-second kinematics chunks
while consuming its own live event stream.  Flagged (unsafe) events are
printed as they arrive; the run ends with each session's close summary
and the ``gateway_stats()`` aggregate — connections, frames over the
wire, per-shard tick latency — i.e. the operator's view described in
``docs/remote.md``.

The monitor uses deterministic synthetic weights so the demo starts
instantly; because serving is parity-locked, each theatre's event
stream is bit-identical to what a local ``MonitorService`` (or the
paper's ``stream()`` replay) would produce for the same frames.

Run:  PYTHONPATH=src python examples/remote_clients.py [--clients 6] [--shards 1]
"""

from __future__ import annotations

import argparse
import asyncio
import time

from repro.serving import (
    AsyncRemoteMonitorClient,
    MonitorGateway,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)

N_FEATURES = 38
CHUNK = 30  # one second of 30 Hz kinematics per FRAME message


async def theatre(
    host: str, port: int, session_id: str, frames, quiet_until: int = 5
) -> dict:
    """One operating theatre: its own connection, session and stream."""
    client = await AsyncRemoteMonitorClient.connect(host, port)
    try:
        await client.open_session(session_id)
        n_frames = frames.shape[0]
        alerts = 0

        async def consume() -> None:
            nonlocal alerts
            received = 0
            async for event in client.events():
                received += 1
                if event.flag:
                    alerts += 1
                    if alerts <= quiet_until:  # don't flood the console
                        print(
                            f"  ALERT {event.session_id} frame "
                            f"{event.frame_index}: gesture G{event.gesture}, "
                            f"unsafe score {event.score:.3f}"
                        )
                if received == n_frames:
                    return

        consumer = asyncio.create_task(consume())
        for start in range(0, n_frames, CHUNK):
            await client.feed(session_id, frames[start : start + CHUNK])
            await asyncio.sleep(0)  # interleave with the other theatres
        await consumer
        summary = await client.close_session(session_id)
        summary["alerts"] = alerts
        return summary
    finally:
        await client.aclose()


async def main_async(args: argparse.Namespace) -> None:
    monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
    async with MonitorGateway(
        monitor, n_shards=args.shards, max_sessions=args.clients
    ) as gateway:
        print(
            f"Gateway on {gateway.host}:{gateway.port} — "
            f"{args.shards} shard(s), backend {gateway.backend!r}"
        )
        trajectories = {
            f"OR-{i + 1:02d}": make_random_walk_trajectory(
                args.frames, n_features=N_FEATURES, seed=100 + i
            )
            for i in range(args.clients)
        }
        start = time.perf_counter()
        summaries = await asyncio.gather(
            *(
                theatre(gateway.host, gateway.port, sid, t.frames)
                for sid, t in trajectories.items()
            )
        )
        elapsed = time.perf_counter() - start

        print("\nPer-theatre summaries:")
        for summary in sorted(summaries, key=lambda s: s["session_id"]):
            print(
                f"  {summary['session_id']}: {summary['n_frames']} frames, "
                f"{summary['n_flagged']} flagged, "
                f"{summary['alerts']} alerts seen live"
            )

        stats = await gateway.gateway_stats()
        total = stats["frames_received"]
        print(
            f"\nGateway: {stats['connections']['total']} connection(s), "
            f"{total} frames over the wire in {elapsed:.2f} s "
            f"({total / elapsed:.0f} frames/s), "
            f"{stats['events_sent']} events returned, "
            f"peak {stats['sessions']['peak_open']} concurrent sessions"
        )
        for index in sorted(stats["shards"], key=int):
            shard = stats["shards"][index]
            print(
                f"  shard {index}: {shard['frames_processed']:6d} frames in "
                f"{shard['n_ticks']:5d} ticks — "
                f"tick p50 {shard['tick_p50_ms']:.2f} ms, "
                f"p99 {shard['tick_p99_ms']:.2f} ms"
            )
        assert not gateway.failed_sessions, "clean run must not fail-safe"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--frames", type=int, default=300)
    args = parser.parse_args()
    if min(args.clients, args.shards, args.frames) < 1:
        parser.error("--clients/--shards/--frames must all be >= 1")
    asyncio.run(main_async(args))


if __name__ == "__main__":
    main()
