"""Durable append-only event store: the fleet's flight recorder.

Every :class:`~repro.serving.service.SessionEvent` a serving layer
emits — ordinary monitoring events, fail-safe crash events, ingest
failures — can be teed into an :class:`EventStoreWriter`, which
persists them to **segmented, schema-versioned, append-only log
files**.  The write path is designed around one invariant: *the hot
tick loop never blocks on disk*.  ``append()`` encodes the record and
pushes it onto a bounded in-memory ring; a background flusher thread
batches rings into single ``write()`` calls, rotates segments at a
size cap, and applies the configured fsync policy.  A full ring
degrades to a **counted drop** (``dropped_total``), never a stalled
tick — the same fail-open posture as the shared-memory event ring.

The read side (:class:`EventStoreReader`) replays the log:
per-session / per-procedure timelines come back **bit-identical** to
the live event stream (session ids, frame indices, gestures, raw
float64 score bits, flags, error fields), pinned by the chaos-parity
suite.  A truncated trailing record — the signature of a crash
mid-write — is recovered by stopping at the last complete record;
a segment written by a *different* schema version is refused with
:class:`~repro.errors.ProtocolError`, mirroring the wire protocol's
version handshake.

Segment format (all little-endian)::

    header:  magic ``b"RSEVTLOG"`` | version u16 | reserved u16
    record:  payload_len u32 | kind u8 | payload
    event payload:   seq u64 | frame u64 | gesture i64 | score f64 |
                     flags u8 (bit0=flag, bit1=has_error) | shard i32 |
                     latency_us f64 | sid_len u16 | sid utf-8 |
                     [err_len u32 | err utf-8]
    marker payload:  seq u64 | json_len u32 | json utf-8

``score`` is stored as its raw IEEE-754 bits, so replay round-trips
the float exactly.  Markers record fleet-level incidents (resizes)
interleaved with events in append order.  See
``docs/observability.md``.
"""

from __future__ import annotations

import json
import os
import struct
import threading
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from ..errors import ConfigurationError, ProtocolError
from .service import SessionEvent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from typing import BinaryIO

__all__ = [
    "EVENTSTORE_VERSION",
    "EventStoreReader",
    "EventStoreWriter",
    "StoredRecord",
]

#: Segment schema version.  Bump on any layout change; readers refuse
#: foreign versions with :class:`ProtocolError`, like the wire protocol.
EVENTSTORE_VERSION = 1

#: 8-byte segment magic preceding the version header.
SEGMENT_MAGIC = b"RSEVTLOG"

#: Record kinds.
REC_EVENT = 1
REC_MARKER = 2

_HEADER = struct.Struct("<8sHH")
_RECORD_PREFIX = struct.Struct("<IB")  # payload length, kind
_EVENT_FIXED = struct.Struct("<QQqdBid")  # seq,frame,gesture,score,flags,shard,latency
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

_FLAG_UNSAFE = 0x01
_FLAG_HAS_ERROR = 0x02

#: fsync policies accepted by :class:`EventStoreWriter`.
FSYNC_POLICIES = ("always", "rotate", "never")


def _encode_event(seq: int, event: SessionEvent, shard: int) -> bytes:
    """One EVENT record (prefix included), score as raw float64 bits."""
    flags = (_FLAG_UNSAFE if event.flag else 0) | (
        _FLAG_HAS_ERROR if event.error is not None else 0
    )
    sid = event.session_id.encode("utf-8")
    payload = [
        _EVENT_FIXED.pack(
            seq,
            event.frame_index,
            event.gesture,
            event.score,
            flags,
            shard,
            event.latency_us,
        ),
        _U16.pack(len(sid)),
        sid,
    ]
    if event.error is not None:
        err = event.error.encode("utf-8")
        payload.append(_U32.pack(len(err)))
        payload.append(err)
    body = b"".join(payload)
    return _RECORD_PREFIX.pack(len(body), REC_EVENT) + body


def _encode_marker(seq: int, marker: dict) -> bytes:
    """One MARKER record (prefix included), payload as compact JSON."""
    blob = json.dumps(marker, sort_keys=True, separators=(",", ":")).encode("utf-8")
    body = _U64.pack(seq) + _U32.pack(len(blob)) + blob
    return _RECORD_PREFIX.pack(len(body), REC_MARKER) + body


@dataclass(frozen=True)
class StoredRecord:
    """One decoded log record: an event or a fleet marker.

    ``kind`` is ``"event"`` or ``"marker"``.  Event records carry the
    replayed :class:`SessionEvent` plus the provenance the live stream
    does not (``seq`` — the writer's append order across segments —
    and ``shard``, ``-1`` when the emitting layer was unsharded).
    Marker records carry the decoded JSON ``marker`` dict instead.
    """

    kind: str
    seq: int
    shard: int
    event: SessionEvent | None
    marker: dict | None


class EventStoreWriter:
    """Non-blocking bounded writer over a directory of log segments.

    Parameters
    ----------
    root:
        Store directory, created if missing.  A writer re-opened over
        an existing store starts a fresh segment after the highest
        existing index — it never appends to (or repairs) an old tail.
    segment_bytes:
        Rotation cap: a flush that would push the current segment past
        this size closes it and opens the next (a single oversized
        batch still lands whole in a fresh segment).
    ring_capacity:
        Bound on buffered-but-unflushed records.  ``append`` on a full
        ring increments ``dropped_total`` and returns ``False`` —
        it never blocks the caller.
    fsync:
        ``"always"`` — fsync after every flush batch; ``"rotate"``
        (default) — fsync only when a segment is closed; ``"never"`` —
        leave durability to the OS page cache.
    flush_interval_s:
        Background flusher wake-up period; appends also wake it
        eagerly, so this is the *idle* latency bound, not the throughput
        batch size.

    Thread-safe: any number of threads may ``append`` concurrently
    (the K-shard tee paths do).  Counters — ``appended_total``,
    ``dropped_total``, ``flushed_total``, ``segments_created``,
    ``bytes_written`` — are exposed via :meth:`stats` and surface in
    ``gateway_stats()`` when a store is attached to a gateway.
    """

    def __init__(
        self,
        root: str | os.PathLike,
        *,
        segment_bytes: int = 8 << 20,
        ring_capacity: int = 65536,
        fsync: str = "rotate",
        flush_interval_s: float = 0.05,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ConfigurationError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if segment_bytes < _HEADER.size + _RECORD_PREFIX.size:
            raise ConfigurationError("segment_bytes is too small for a record")
        if ring_capacity < 1:
            raise ConfigurationError("ring_capacity must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = int(segment_bytes)
        self.ring_capacity = int(ring_capacity)
        self.fsync = fsync
        self.flush_interval_s = float(flush_interval_s)

        self._lock = threading.Lock()
        self._io_lock = threading.Lock()
        self._buf: deque[bytes] = deque()
        self._seq = 0
        self._closed = False
        self._wake = threading.Event()

        existing = sorted(self.root.glob("events-*.seg"))
        self._next_segment = (
            int(existing[-1].stem.split("-")[1]) + 1 if existing else 0
        )
        self._file: BinaryIO | None = None
        self._file_bytes = 0

        self.appended_total = 0
        self.dropped_total = 0
        self.flushed_total = 0
        self.segments_created = 0
        self.bytes_written = 0
        self.flusher_error: str | None = None

        self._flusher = threading.Thread(
            target=self._flush_loop, name="eventstore-flusher", daemon=True
        )
        self._flusher.start()

    # -- write path ----------------------------------------------------
    def append(self, event: SessionEvent, shard: int = -1) -> bool:
        """Buffer one event; ``False`` (and a counted drop) when full."""
        with self._lock:
            if self._closed or len(self._buf) >= self.ring_capacity:
                self.dropped_total += 1
                return False
            self._buf.append(_encode_event(self._seq, event, shard))
            self._seq += 1
            self.appended_total += 1
        self._wake.set()
        return True

    def append_batch(self, events: Iterable[SessionEvent], shard: int = -1) -> int:
        """Buffer a batch of events; returns how many were accepted."""
        accepted = 0
        with self._lock:
            for event in events:
                if self._closed or len(self._buf) >= self.ring_capacity:
                    self.dropped_total += 1
                    continue
                self._buf.append(_encode_event(self._seq, event, shard))
                self._seq += 1
                self.appended_total += 1
                accepted += 1
        if accepted:
            self._wake.set()
        return accepted

    def append_marker(self, kind: str, data: dict | None = None) -> bool:
        """Buffer a fleet marker with a JSON body.

        The durable record of fleet-shape decisions, interleaved with
        the event stream in append order: ``"resize"`` markers from the
        capacity level (manual resizes and the autoscaler) and
        ``"shed"`` placement-change markers from the skew level (manual
        sheds and the balancer) — so a replay can attribute any latency
        shift to the topology change that caused it.
        """
        marker = {"type": kind, **(data or {})}
        with self._lock:
            if self._closed or len(self._buf) >= self.ring_capacity:
                self.dropped_total += 1
                return False
            self._buf.append(_encode_marker(self._seq, marker))
            self._seq += 1
            self.appended_total += 1
        self._wake.set()
        return True

    # -- flusher -------------------------------------------------------
    def _flush_loop(self) -> None:
        while True:
            self._wake.wait(self.flush_interval_s)
            self._wake.clear()
            with self._lock:
                closed = self._closed
            try:
                self._drain()
            except Exception as exc:  # noqa: BLE001 - a failing disk must
                # surface as a recorded degradation, never kill the tick
                # loop's tee thread; the error is exposed via stats().
                with self._lock:
                    self.flusher_error = repr(exc)
            if closed:
                return

    def _drain(self) -> int:
        """Flush buffered records to the current segment; returns count."""
        with self._lock:
            if not self._buf:
                return 0
            chunks = list(self._buf)
            self._buf.clear()
        total = 0
        with self._io_lock:
            i, n_chunks = 0, len(chunks)
            while i < n_chunks:
                # Rotate a non-empty segment that cannot fit the next
                # record — checked per record, not per drain, so one
                # large backlog flush still honours the size cap.
                if (
                    self._file is not None
                    and self._file_bytes > _HEADER.size
                    and self._file_bytes + len(chunks[i]) > self.segment_bytes
                ):
                    self._close_segment()
                if self._file is None:
                    self._open_segment()
                assert self._file is not None
                # Coalesce everything that fits this segment into one
                # write.  An oversized record still goes out alone: a
                # segment always carries at least one record.
                group = len(chunks[i])
                j = i + 1
                while (
                    j < n_chunks
                    and self._file_bytes + group + len(chunks[j])
                    <= self.segment_bytes
                ):
                    group += len(chunks[j])
                    j += 1
                self._file.write(b"".join(chunks[i:j]))
                self._file.flush()
                if self.fsync == "always":
                    os.fsync(self._file.fileno())
                self._file_bytes += group
                total += group
                i = j
        with self._lock:
            self.flushed_total += len(chunks)
            self.bytes_written += total
        return len(chunks)

    def _open_segment(self) -> None:
        path = self.root / f"events-{self._next_segment:08d}.seg"
        self._next_segment += 1
        self._file = path.open("wb")
        self._file.write(_HEADER.pack(SEGMENT_MAGIC, EVENTSTORE_VERSION, 0))
        self._file.flush()
        self._file_bytes = _HEADER.size
        with self._lock:
            self.segments_created += 1

    def _close_segment(self) -> None:
        assert self._file is not None
        self._file.flush()
        if self.fsync in ("always", "rotate"):
            os.fsync(self._file.fileno())
        self._file.close()
        self._file = None
        self._file_bytes = 0

    # -- lifecycle -----------------------------------------------------
    def flush(self) -> None:
        """Synchronously drain the ring to disk (tests, clean handoffs)."""
        self._drain()
        with self._io_lock:
            if self._file is not None and self.fsync != "never":
                os.fsync(self._file.fileno())

    def close(self) -> None:
        """Stop the flusher, drain everything, seal the open segment."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake.set()
        self._flusher.join(timeout=5.0)
        self._drain()
        with self._io_lock:
            if self._file is not None:
                self._close_segment()

    def __enter__(self) -> "EventStoreWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter-teardown close is
            # best-effort; modules the close path needs may be gone.
            return

    # -- introspection -------------------------------------------------
    @property
    def pending(self) -> int:
        """Records buffered but not yet flushed."""
        with self._lock:
            return len(self._buf)

    def stats(self) -> dict:
        """Writer counters, JSON-shaped for ``gateway_stats()``."""
        with self._lock:
            return {
                "appended": self.appended_total,
                "dropped": self.dropped_total,
                "flushed": self.flushed_total,
                "pending": len(self._buf),
                "segments": self.segments_created,
                "bytes_written": self.bytes_written,
                "fsync": self.fsync,
                "flusher_error": self.flusher_error,
            }


def _read_exact(fh: BinaryIO, n: int) -> bytes | None:
    """``n`` bytes, or ``None`` on a clean-or-truncated short read."""
    data = fh.read(n)
    return data if len(data) == n else None


def _decode_event(payload: bytes, path: Path) -> StoredRecord:
    if len(payload) < _EVENT_FIXED.size + _U16.size:
        raise ProtocolError(f"{path}: corrupt event record")
    seq, frame, gesture, score, flags, shard, latency_us = _EVENT_FIXED.unpack_from(
        payload
    )
    offset = _EVENT_FIXED.size
    (sid_len,) = _U16.unpack_from(payload, offset)
    offset += _U16.size
    sid = payload[offset : offset + sid_len].decode("utf-8")
    offset += sid_len
    error: str | None = None
    if flags & _FLAG_HAS_ERROR:
        (err_len,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        error = payload[offset : offset + err_len].decode("utf-8")
    event = SessionEvent(
        session_id=sid,
        frame_index=frame,
        gesture=gesture,
        score=score,
        flag=bool(flags & _FLAG_UNSAFE),
        error=error,
        latency_us=latency_us,
    )
    return StoredRecord(kind="event", seq=seq, shard=shard, event=event, marker=None)


def _decode_marker(payload: bytes, path: Path) -> StoredRecord:
    if len(payload) < _U64.size + _U32.size:
        raise ProtocolError(f"{path}: corrupt marker record")
    (seq,) = _U64.unpack_from(payload)
    (blob_len,) = _U32.unpack_from(payload, _U64.size)
    blob = payload[_U64.size + _U32.size : _U64.size + _U32.size + blob_len]
    return StoredRecord(
        kind="marker", seq=seq, shard=-1, event=None,
        marker=json.loads(blob.decode("utf-8")),
    )


class EventStoreReader:
    """Replay a store directory's segments in append order.

    Iteration walks segments by index, records by file position —
    which *is* the writer's append order.  A truncated trailing record
    (crash mid-write) ends that segment's iteration cleanly; a segment
    with a foreign schema version or magic raises
    :class:`ProtocolError` (mirroring the wire protocol's refusal of
    unsupported versions); corruption *inside* a record raises too.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)

    def segments(self) -> list[Path]:
        """Segment paths in append order."""
        return sorted(self.root.glob("events-*.seg"))

    def _iter_segment(self, path: Path) -> Iterator[StoredRecord]:
        with path.open("rb") as fh:
            header = _read_exact(fh, _HEADER.size)
            if header is None:
                raise ProtocolError(f"{path}: truncated segment header")
            magic, version, _reserved = _HEADER.unpack(header)
            if magic != SEGMENT_MAGIC:
                raise ProtocolError(f"{path}: not an event-store segment")
            if version != EVENTSTORE_VERSION:
                raise ProtocolError(
                    f"{path}: unsupported event-store version {version} "
                    f"(this reader speaks {EVENTSTORE_VERSION})"
                )
            while True:
                prefix = _read_exact(fh, _RECORD_PREFIX.size)
                if prefix is None:
                    return  # clean end or truncated prefix: stop here
                length, kind = _RECORD_PREFIX.unpack(prefix)
                payload = _read_exact(fh, length)
                if payload is None:
                    return  # truncated mid-record: recover at last whole one
                if kind == REC_EVENT:
                    yield _decode_event(payload, path)
                elif kind == REC_MARKER:
                    yield _decode_marker(payload, path)
                else:
                    raise ProtocolError(
                        f"{path}: unknown record kind {kind}"
                    )

    def iter_records(self) -> Iterator[StoredRecord]:
        """Every stored record — events and markers — in append order."""
        for path in self.segments():
            yield from self._iter_segment(path)

    def iter_markers(self) -> Iterator[dict]:
        """Decoded marker dicts (resize history etc.) in append order."""
        for record in self.iter_records():
            if record.kind == "marker":
                assert record.marker is not None
                yield record.marker

    def replay(self, session_id: str | None = None) -> Iterator[SessionEvent]:
        """Replay the live event stream from disk, bit-identically.

        Yields :class:`SessionEvent` in append order, optionally
        filtered to one session.  Equality with the live stream holds
        field-for-field (``latency_us`` is excluded from event equality
        by design, like on the live objects).
        """
        for record in self.iter_records():
            if record.kind != "event":
                continue
            assert record.event is not None
            if session_id is None or record.event.session_id == session_id:
                yield record.event

    def session_timeline(self, session_id: str) -> list[SessionEvent]:
        """One procedure's full event timeline, in frame order."""
        return list(self.replay(session_id))

    def session_ids(self) -> list[str]:
        """Distinct session ids present in the store, first-seen order."""
        seen: dict[str, None] = {}
        for event in self.replay():
            seen.setdefault(event.session_id, None)
        return list(seen)
