"""Whole-demonstration synthesis for the JIGSAWS-style tasks.

:class:`SurgicalTaskSynthesizer` ties together the task grammar (Markov
chain), the per-gesture motion primitives, subject skill profiles and the
rubric error injector to produce annotated demonstrations with the same
structure as the paper's dVRK data: 38-variable kinematics at 30 Hz,
per-frame gesture labels and per-frame unsafe labels (a whole gesture is
unsafe when any rubric error was injected into it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import as_generator
from ..errors import DatasetError
from ..gestures.markov import MarkovChain
from ..gestures.models import suturing_chain
from ..gestures.vocabulary import END_TOKEN, START_TOKEN, Gesture
from ..kinematics.state import N_VARIABLES_PER_ARM
from ..kinematics.trajectory import Trajectory
from .dataset import Demonstration, SurgicalDataset
from .errors import ErrorInjector
from .primitives import PRIMITIVES, SKILL_PROFILES, render_gesture
from .schema import FRAME_RATE_HZ, SKILL_LEVELS, SUBJECTS, TRIALS_PER_SUBJECT, SuturingAnchors


def _simple_chain(sequence: list[Gesture]) -> MarkovChain:
    """A deterministic chain visiting ``sequence`` in order."""
    transitions: dict[int, dict[int, float]] = {START_TOKEN: {int(sequence[0]): 1.0}}
    for a, b in zip(sequence[:-1], sequence[1:]):
        transitions[int(a)] = {int(b): 1.0}
    transitions[int(sequence[-1])] = {END_TOKEN: 1.0}
    return MarkovChain(transitions)


#: Knot-Tying grammar: reach suture, loop, reach through loop, pull taut.
#: (The paper does not publish these chains; a plausible deterministic
#: core with a stochastic retry of the loop matches the task's structure
#: and yields the intermediate difficulty seen in paper Table IV.)
KNOT_TYING_CHAIN = MarkovChain(
    {
        START_TOKEN: {int(Gesture.G1): 0.8, int(Gesture.G12): 0.2},
        int(Gesture.G1): {int(Gesture.G12): 0.9, int(Gesture.G13): 0.1},
        int(Gesture.G12): {int(Gesture.G13): 1.0},
        int(Gesture.G13): {int(Gesture.G14): 0.85, int(Gesture.G13): 0.15},
        int(Gesture.G14): {int(Gesture.G15): 1.0},
        int(Gesture.G15): {int(Gesture.G11): 0.8, int(Gesture.G13): 0.2},
        int(Gesture.G11): {END_TOKEN: 1.0},
    }
)

#: Needle-Passing grammar: like Suturing but with more positional
#: ambiguity (passes through rings rather than tissue) — more gesture
#: recurrence, which makes it the hardest task to segment (Table IV).
NEEDLE_PASSING_CHAIN = MarkovChain(
    {
        START_TOKEN: {int(Gesture.G1): 0.7, int(Gesture.G5): 0.3},
        int(Gesture.G1): {int(Gesture.G2): 0.8, int(Gesture.G5): 0.2},
        int(Gesture.G2): {int(Gesture.G3): 0.9, int(Gesture.G8): 0.1},
        int(Gesture.G3): {int(Gesture.G6): 0.75, int(Gesture.G2): 0.15, int(Gesture.G8): 0.1},
        int(Gesture.G4): {int(Gesture.G2): 0.6, int(Gesture.G8): 0.2, int(Gesture.G11): 0.2},
        int(Gesture.G5): {int(Gesture.G2): 0.7, int(Gesture.G8): 0.3},
        int(Gesture.G6): {int(Gesture.G4): 0.7, int(Gesture.G11): 0.2, int(Gesture.G2): 0.1},
        int(Gesture.G8): {int(Gesture.G2): 0.9, int(Gesture.G3): 0.1},
        int(Gesture.G11): {END_TOKEN: 1.0},
    }
)


@dataclass
class SurgicalTaskSynthesizer:
    """Generates annotated synthetic demonstrations of one task.

    Parameters
    ----------
    task:
        Task name recorded into demonstration metadata.
    chain:
        The gesture grammar to sample sequences from.
    error_injector:
        Rubric error injector (pass ``ErrorInjector(rate_scale=0)`` for
        fault-free data).
    anchors:
        Scene geometry.
    position_noise_extra:
        Additional positional noise (metres) applied to whole
        demonstrations; used to make Needle-Passing harder to segment.
    """

    task: str = "suturing"
    chain: MarkovChain = field(default_factory=suturing_chain)
    error_injector: ErrorInjector = field(default_factory=ErrorInjector)
    anchors: SuturingAnchors = field(default_factory=SuturingAnchors)
    frame_rate_hz: float = FRAME_RATE_HZ
    position_noise_extra: float = 0.0

    # ------------------------------------------------------------------
    def demonstration(
        self,
        subject: str,
        trial: int,
        rng: int | np.random.Generator | None = None,
    ) -> Demonstration:
        """Synthesise one annotated demonstration."""
        gen = as_generator(rng)
        skill = SKILL_PROFILES[SKILL_LEVELS.get(subject, "intermediate")]
        sequence = self.chain.sample_sequence(gen)
        # Per-demonstration scene shift: the suturing pad never sits at
        # exactly the same spot between trials.  This global offset adds
        # inter-demonstration variability that hurts absolute-position
        # cues (gesture classification) while leaving shift-invariant
        # error signatures intact — mirroring the real dVRK recordings.
        demo_offset = gen.normal(0.0, 0.012, 3)

        segments: list[np.ndarray] = []
        gesture_labels: list[np.ndarray] = []
        unsafe_labels: list[np.ndarray] = []
        error_modes: list[str | None] = []
        last_left: np.ndarray | None = None
        last_right: np.ndarray | None = None

        for gesture in sequence:
            primitive = PRIMITIVES.get(gesture)
            if primitive is None:
                raise DatasetError(f"no primitive defined for {gesture}")
            start = (
                None
                if last_left is None
                else (last_left, last_right)
            )
            frames = render_gesture(
                primitive,
                self.anchors,
                skill,
                gen,
                frame_rate_hz=self.frame_rate_hz,
                start_positions=start,
            )
            frames, mode = self.error_injector.maybe_inject(
                gesture, frames, skill, gen
            )
            for off in (0, N_VARIABLES_PER_ARM):
                frames[:, off : off + 3] += demo_offset[None, :]
            if self.position_noise_extra > 0.0:
                for off in (0, N_VARIABLES_PER_ARM):
                    frames[:, off : off + 3] += gen.normal(
                        0.0, self.position_noise_extra, (frames.shape[0], 3)
                    )
            n = frames.shape[0]
            segments.append(frames)
            gesture_labels.append(np.full(n, int(gesture)))
            unsafe_labels.append(np.full(n, 1 if mode is not None else 0))
            error_modes.append(None if mode is None else mode.value)
            last_left = frames[-1, 0:3].copy()
            last_right = frames[-1, N_VARIABLES_PER_ARM : N_VARIABLES_PER_ARM + 3].copy()

        trajectory = Trajectory(
            frames=np.concatenate(segments, axis=0),
            frame_rate_hz=self.frame_rate_hz,
            gestures=np.concatenate(gesture_labels),
            unsafe=np.concatenate(unsafe_labels),
            metadata={
                "task": self.task,
                "subject": subject,
                "trial": trial,
                "skill": skill.label,
                "error_modes": error_modes,
                "gesture_sequence": [int(g) for g in sequence],
            },
        )
        return Demonstration(
            trajectory=trajectory, subject=subject, trial=trial, task=self.task
        )

    def dataset(
        self,
        n_demos: int | None = None,
        rng: int | np.random.Generator | None = 0,
    ) -> SurgicalDataset:
        """Synthesise a full dataset across subjects and supertrials.

        The default count is ``len(SUBJECTS) * TRIALS_PER_SUBJECT - 1``
        (39 for the canonical roster, matching the paper's 39 Suturing
        demonstrations: one recording is traditionally missing).
        """
        gen = as_generator(rng)
        roster = [
            (subject, trial)
            for trial in range(1, TRIALS_PER_SUBJECT + 1)
            for subject in SUBJECTS
        ]
        if n_demos is None:
            n_demos = len(roster) - 1
        if n_demos < 1:
            raise DatasetError("n_demos must be >= 1")
        demos = [
            self.demonstration(subject, trial, gen)
            for subject, trial in roster[:n_demos]
        ]
        return SurgicalDataset(demonstrations=demos, task=self.task)


# ----------------------------------------------------------------------
# Convenience constructors
# ----------------------------------------------------------------------
def make_suturing_dataset(
    n_demos: int | None = None,
    rng: int | np.random.Generator | None = 0,
    error_rate_scale: float = 1.0,
) -> SurgicalDataset:
    """The paper's Suturing dataset: 39 demos with rubric errors."""
    synth = SurgicalTaskSynthesizer(
        task="suturing",
        chain=suturing_chain(),
        error_injector=ErrorInjector(rate_scale=error_rate_scale),
    )
    return synth.dataset(n_demos=n_demos, rng=rng)


def make_task_dataset(
    task: str,
    n_demos: int | None = None,
    rng: int | np.random.Generator | None = 0,
) -> SurgicalDataset:
    """Dataset for ``task`` in {"suturing", "knot_tying", "needle_passing"}.

    Knot-Tying and Needle-Passing are used only for the gesture
    classification comparison of paper Table IV (28 and 36 demos).
    """
    if task == "suturing":
        return make_suturing_dataset(n_demos=n_demos, rng=rng)
    if task == "knot_tying":
        synth = SurgicalTaskSynthesizer(
            task=task,
            chain=KNOT_TYING_CHAIN,
            error_injector=ErrorInjector(rate_scale=0.0),
            position_noise_extra=0.0015,
        )
        return synth.dataset(n_demos=28 if n_demos is None else n_demos, rng=rng)
    if task == "needle_passing":
        synth = SurgicalTaskSynthesizer(
            task=task,
            chain=NEEDLE_PASSING_CHAIN,
            error_injector=ErrorInjector(rate_scale=0.0),
            position_noise_extra=0.004,
        )
        return synth.dataset(n_demos=36 if n_demos is None else n_demos, rng=rng)
    raise DatasetError(f"unknown task {task!r}")
