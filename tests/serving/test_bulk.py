"""Unit tests for the bulk offline scoring engine (repro.serving.bulk)."""

import numpy as np
import pytest

from repro.config import WindowConfig
from repro.errors import ConfigurationError, NotFittedError
from repro.serving import (
    BulkScorer,
    make_random_walk_trajectory,
    make_synthetic_monitor,
    score_procedure,
    score_procedures,
)


@pytest.fixture(scope="module")
def monitor():
    return make_synthetic_monitor(n_features=10, seed=7)


@pytest.fixture(scope="module")
def trajectory():
    return make_random_walk_trajectory(200, n_features=10, seed=3)


class TestBulkScorerParity:
    def test_reference_bit_identical_to_process(self, monitor, trajectory):
        looped = monitor.process(trajectory)
        bulk = BulkScorer(monitor).score(trajectory)
        np.testing.assert_array_equal(bulk.gestures, looped.gestures)
        np.testing.assert_array_equal(bulk.unsafe_scores, looped.unsafe_scores)
        np.testing.assert_array_equal(bulk.unsafe_flags, looped.unsafe_flags)

    def test_true_gesture_mode(self, monitor, trajectory):
        looped = monitor.process(trajectory, use_true_gestures=True)
        bulk = BulkScorer(monitor).score(trajectory, use_true_gestures=True)
        np.testing.assert_array_equal(bulk.gestures, looped.gestures)
        np.testing.assert_array_equal(bulk.unsafe_scores, looped.unsafe_scores)
        assert bulk.metadata["use_true_gestures"] is True

    def test_true_gesture_mode_needs_labels(self, monitor, trajectory):
        stripped = make_random_walk_trajectory(50, n_features=10, seed=1)
        stripped.gestures = None
        with pytest.raises(NotFittedError):
            BulkScorer(monitor).score(stripped, use_true_gestures=True)

    def test_compiled_backends_match_within_contract(self, monitor, trajectory):
        looped = monitor.process(trajectory)
        for backend, atol in (("compiled", 1e-6), ("compiled-f32", 1e-3)):
            bulk = BulkScorer(monitor, backend=backend).score(trajectory)
            np.testing.assert_array_equal(bulk.gestures, looped.gestures)
            np.testing.assert_allclose(
                bulk.unsafe_scores, looped.unsafe_scores, atol=atol
            )

    def test_shorter_than_one_window(self, monitor):
        short = make_random_walk_trajectory(3, n_features=10, seed=2)
        looped = monitor.process(short)
        bulk = BulkScorer(monitor).score(short)
        np.testing.assert_array_equal(bulk.gestures, looped.gestures)
        np.testing.assert_array_equal(bulk.unsafe_scores, looped.unsafe_scores)
        assert bulk.metadata["n_windows"] == 0

    def test_strided_error_windows(self):
        monitor = make_synthetic_monitor(
            n_features=6, seed=1, error_window=WindowConfig(6, 3)
        )
        trajectory = make_random_walk_trajectory(91, n_features=6, seed=5)
        looped = monitor.process(trajectory)
        bulk = BulkScorer(monitor).score(trajectory)
        np.testing.assert_array_equal(bulk.unsafe_scores, looped.unsafe_scores)
        np.testing.assert_array_equal(bulk.unsafe_flags, looped.unsafe_flags)

    def test_unknown_backend_rejected(self, monitor):
        with pytest.raises(ConfigurationError):
            BulkScorer(monitor, backend="jit")


class TestBulkScorerOutputContract:
    def test_metadata_fields(self, monitor, trajectory):
        out = BulkScorer(monitor, backend="compiled").score(trajectory)
        assert out.metadata["engine"] == "bulk"
        assert out.metadata["backend"] == "compiled"
        assert out.metadata["n_windows"] == monitor.config.error_window.n_windows(
            trajectory.n_frames
        )
        assert out.metadata["wall_ms"] > 0
        assert out.metadata["bulk_fps"] == pytest.approx(
            trajectory.n_frames / (out.metadata["wall_ms"] / 1000.0)
        )

    def test_amortised_stage_latencies(self, monitor, trajectory):
        out = BulkScorer(monitor).score(trajectory)
        assert out.gesture_ms > 0
        assert out.error_ms > 0
        assert out.compute_ms == out.gesture_ms + out.error_ms

    def test_true_gesture_mode_has_no_gesture_latency(self, monitor, trajectory):
        out = BulkScorer(monitor).score(trajectory, use_true_gestures=True)
        assert out.gesture_ms == 0.0

    def test_score_many_reuses_backends(self, monitor):
        scorer = BulkScorer(monitor, backend="compiled")
        trajectories = [
            make_random_walk_trajectory(60, n_features=10, seed=s) for s in range(3)
        ]
        outs = scorer.score_many(trajectories)
        assert len(outs) == 3
        gesture_backend = scorer._gesture_backend
        scorer.score(trajectories[0])
        assert scorer._gesture_backend is gesture_backend  # cached, not rebuilt

    def test_backend_cache_invalidated_on_rebind(self, trajectory):
        local = make_synthetic_monitor(n_features=10, seed=7)
        scorer = BulkScorer(local)
        scorer.score(trajectory)
        before = scorer._gesture_backend[1]
        # fit() rebinds .model — simulate the retrain signal.
        fresh = make_synthetic_monitor(n_features=10, seed=8)
        local.gesture_classifier.model = fresh.gesture_classifier.model
        scorer.score(trajectory)
        assert scorer._gesture_backend[1] is not before


class TestProcessBulkFastPath:
    def test_process_bulk_matches_process(self, monitor, trajectory):
        looped = monitor.process(trajectory)
        bulk = monitor.process(trajectory, bulk=True)
        np.testing.assert_array_equal(bulk.unsafe_scores, looped.unsafe_scores)
        assert bulk.metadata["engine"] == "bulk"

    def test_scorers_cached_per_backend(self, trajectory):
        local = make_synthetic_monitor(n_features=10, seed=7)
        local.process(trajectory, bulk=True)
        local.process(trajectory, bulk=True)
        local.process(trajectory, bulk=True, backend="compiled")
        assert set(local._bulk_scorers) == {"reference", "compiled"}

    def test_backend_without_bulk_rejected(self, monitor, trajectory):
        with pytest.raises(ConfigurationError):
            monitor.process(trajectory, backend="compiled")


class TestConveniences:
    def test_score_procedure(self, monitor, trajectory):
        out = score_procedure(monitor, trajectory)
        looped = monitor.process(trajectory)
        np.testing.assert_array_equal(out.unsafe_scores, looped.unsafe_scores)

    def test_score_procedures(self, monitor):
        trajectories = [
            make_random_walk_trajectory(50, n_features=10, seed=s) for s in range(2)
        ]
        outs = score_procedures(monitor, trajectories, backend="compiled")
        assert len(outs) == 2
        for trajectory, out in zip(trajectories, outs):
            assert len(out.unsafe_scores) == trajectory.n_frames
