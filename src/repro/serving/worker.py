"""Shard worker: one process, one :class:`MonitorService`, one pipe.

:func:`worker_main` is the entry point the sharded router spawns for
every shard.  It rebuilds the trained monitor from the snapshot bytes it
was handed (:func:`repro.serving.snapshot.monitor_from_bytes` — no code
or pickled objects cross the process boundary, only arrays and JSON),
then serves until told to stop or the router side of the pipe disappears.

Under the default shared-memory data plane (:mod:`repro.serving.shm`)
the pipe carries control ops only; the bulk traffic moves through two
rings the router created for this shard:

- **frame ring** (in): the worker drains it into its service before
  dispatching *any* pipe request — so a ``feed`` written to the ring is
  always ordered ahead of the ``tick``/``close``/``migrate_out`` that
  followed it on the router thread — and opportunistically between
  requests (a short pipe poll timeout), which is what frees space for a
  back-pressured writer even when no request is in flight.
- **event ring** (out): each tick's event batch is packed as one
  :data:`~repro.serving.shm.EVENT_DTYPE` record; the pipe reply carries
  only the batch count.  If the ring is momentarily full the remaining
  batches of that reply fall back to the pipe (``overflow``), so events
  are never dropped and never deadlock the drain.

A frame block the service rejects (a safety net — the router validates
shape and width before writing) cannot raise in ``feed()`` any more,
because there is no reply to raise through: the worker evicts the
session and reports ``(route, error)`` in ``Reply.ingest_errors`` on
the next exchange, and the router fails the session safe from there.

Worker-side exceptions are converted to error replies (the worker keeps
serving its other sessions); only a broken pipe or an explicit ``stop``
ends the process.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import WorkerError
from ..nn.backends import DEFAULT_BACKEND
from .service import MonitorService, SessionEvent
from .shm import EVENT_DTYPE, ShmRing
from .snapshot import monitor_from_bytes, session_from_bytes, session_to_bytes
from .transport import Reply, Request, error_reply, recv_message

#: Pipe poll timeout between requests when a frame ring is attached: the
#: upper bound on how long a back-pressured ``feed()`` waits for the
#: worker to free ring space while no request is in flight.
RING_POLL_S = 0.002


class _ShardWorker:
    """Per-process worker state: the service, the rings, the route map."""

    def __init__(
        self,
        service: MonitorService,
        frame_ring: ShmRing | None,
        event_ring: ShmRing | None,
    ) -> None:
        self.service = service
        self.frame_ring = frame_ring
        self.event_ring = event_ring
        #: session id -> route id; the inverse map addresses ring frames.
        self._routes: dict[str, int] = {}
        self._sessions_by_route: dict[int, str] = {}
        #: Deferred (route, message) ingest failures, reported on the
        #: next reply (see module docstring).
        self._ingest_errors: list[tuple[int, str]] = []
        #: Reusable event-encoding scratch, grown on demand.
        self._event_scratch = np.empty(service.max_sessions, dtype=EVENT_DTYPE)

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------
    def bind_route(self, session_id: str, route: int | None) -> None:
        if route is None:
            return
        self._routes[session_id] = route
        self._sessions_by_route[route] = session_id

    def drop_route(self, session_id: str) -> None:
        route = self._routes.pop(session_id, None)
        if route is not None:
            self._sessions_by_route.pop(route, None)

    # ------------------------------------------------------------------
    # Frame ring ingest
    # ------------------------------------------------------------------
    def consume_frames(self) -> None:
        """Drain every pending frame block into the service."""
        ring = self.frame_ring
        if ring is None:
            return
        while True:
            record = ring.read_frames()
            if record is None:
                return
            route, frames = record
            session_id = self._sessions_by_route.get(route)
            if session_id is None:
                self._ingest_errors.append(
                    (route, f"frames for unknown route {route}")
                )
                continue
            try:
                self.service.feed(session_id, frames)
            except Exception as exc:  # noqa: BLE001 - reduced to a
                # deferred ingest error: there is no feed reply to carry
                # it, so evict the session and report on the next
                # exchange (the router fails it safe).
                self._ingest_errors.append(
                    (route, f"{type(exc).__name__}: {exc}")
                )
                self.drop_route(session_id)
                try:
                    self.service.close_session(session_id)
                except Exception as evict_exc:  # noqa: BLE001 - the slot
                    # is already gone; nothing further to free.
                    del evict_exc

    def take_ingest_errors(self) -> tuple:
        errors, self._ingest_errors = tuple(self._ingest_errors), []
        return errors

    # ------------------------------------------------------------------
    # Event ring egress
    # ------------------------------------------------------------------
    def _encode_events(self, events: list[SessionEvent]) -> np.ndarray:
        if len(events) > self._event_scratch.shape[0]:
            self._event_scratch = np.empty(len(events), dtype=EVENT_DTYPE)
        batch = self._event_scratch[: len(events)]
        for i, event in enumerate(events):
            batch[i] = (
                self._routes[event.session_id],
                event.frame_index,
                event.gesture,
                event.score,
                1 if event.flag else 0,
                event.latency_us,
            )
        return batch

    def emit_events(
        self, tick_lists: list[list[SessionEvent]]
    ) -> tuple[int, list[list[SessionEvent]]]:
        """Write per-tick event batches to the ring, oldest first.

        Returns ``(n_ring_batches, overflow_ticks)``.  Once one batch
        fails to fit, the rest of this reply's ticks go to the pipe as
        well (*sticky overflow*), so chronological order is simply
        "ring batches, then overflow batches" and a reader can never
        interleave them wrongly.
        """
        if self.event_ring is None:
            return 0, tick_lists
        n_ring = 0
        for k, events in enumerate(tick_lists):
            if not events or not self.event_ring.try_write_events(
                self._encode_events(events)
            ):
                return n_ring, tick_lists[k:]
            n_ring += 1
        return n_ring, []


def _dispatch(worker: _ShardWorker, request: Request) -> Reply:
    """Execute one request against the worker's local service."""
    service = worker.service
    op = request.op
    if op == "open":
        session_id = service.open_session(
            request.session_id, record_timeline=request.record_timeline
        )
        worker.bind_route(session_id, request.route)
        return Reply(ok=True, value=session_id)
    if op == "feed":  # pipe-only data plane (fallback mode)
        assert request.session_id is not None
        service.feed(request.session_id, request.frames)
        return Reply(ok=True)
    if op == "tick":
        n_ring, overflow = worker.emit_events([service.tick()])
        return Reply(ok=True, value=(n_ring, overflow))
    if op == "drain":
        if request.collect:
            ticks = []
            while service.has_pending:
                ticks.append(service.tick())
        else:
            service.drain(collect=False)
            ticks = []
        n_ring, overflow = worker.emit_events(ticks)
        # Per-session progress rides along so the router's frame
        # accounting stays exact even when events are not collected.
        progress = {sid: service.frames_done(sid) for sid in service.session_ids}
        return Reply(ok=True, value=(n_ring, overflow, progress))
    if op == "close":
        assert request.session_id is not None
        result = service.close_session(request.session_id)
        worker.drop_route(request.session_id)
        return Reply(ok=True, value=result)
    if op == "migrate_out":
        assert request.session_id is not None
        state = service.export_session(request.session_id, remove=True)
        worker.drop_route(request.session_id)
        return Reply(ok=True, value=session_to_bytes(state))
    if op == "migrate_in":
        assert request.state is not None
        state = session_from_bytes(request.state)
        session_id = service.import_session(state)
        worker.bind_route(session_id, request.route)
        return Reply(ok=True, value=session_id)
    if op == "stats":
        return Reply(ok=True, value=service.stats)
    if op == "telemetry":
        return Reply(ok=True, value=service.telemetry.snapshot())
    if op in ("ping", "stop"):
        return Reply(ok=True)
    return Reply(ok=False, error_type="WorkerError", error=f"unknown op {op!r}")


def worker_main(
    conn,
    monitor_blob: bytes,
    max_sessions: int,
    backend: str = DEFAULT_BACKEND,
    frame_ring_name: str | None = None,
    event_ring_name: str | None = None,
) -> None:
    """Serve one shard until ``stop`` or the pipe closes.

    Parameters
    ----------
    conn:
        Worker end of the duplex pipe to the router.
    monitor_blob:
        :func:`~repro.serving.snapshot.monitor_to_bytes` archive to
        bootstrap the shard's :class:`SafetyMonitor` from.
    max_sessions:
        Slot capacity of this shard's :class:`MonitorService`.
    backend:
        Inference backend name for this shard's engine.  The router
        passes every shard the same resolved choice so a K-shard fleet
        runs one plan (see :data:`repro.nn.backends.BACKEND_NAMES`).
    frame_ring_name / event_ring_name:
        Names of the router-owned shared-memory rings to attach
        (:mod:`repro.serving.shm`), or ``None`` for the pipe-only data
        plane.  The worker only ever *detaches* — segment unlinking is
        the router's job, on close, resize and crash alike.
    """
    monitor = monitor_from_bytes(monitor_blob)
    service = MonitorService(monitor, max_sessions=max_sessions, backend=backend)
    frame_ring = (
        ShmRing(name=frame_ring_name, attach=True)
        if frame_ring_name is not None
        else None
    )
    event_ring = (
        ShmRing(name=event_ring_name, attach=True)
        if event_ring_name is not None
        else None
    )
    worker = _ShardWorker(service, frame_ring, event_ring)
    try:
        while True:
            try:
                if frame_ring is not None:
                    worker.consume_frames()
                    if not conn.poll(RING_POLL_S):
                        continue
                request: Request = recv_message(conn, Request, who="router")
            except EOFError:
                break  # router is gone; nothing left to serve
            except WorkerError as exc:
                # Corrupt or foreign message on an intact stream: report
                # it and keep serving — the shard's sessions outlive bad
                # input.
                try:
                    conn.send(error_reply(exc, has_pending=service.has_pending))
                except (BrokenPipeError, OSError):
                    break
                continue
            # Ring frames written before this request must land first
            # (feed -> tick ordering is the parity contract).
            worker.consume_frames()
            try:
                reply = _dispatch(worker, request)
            except Exception as exc:  # noqa: BLE001 - reduced to an error reply
                reply = error_reply(exc, has_pending=service.has_pending)
            else:
                reply = dataclasses.replace(reply, has_pending=service.has_pending)
            reply = dataclasses.replace(
                reply, ingest_errors=worker.take_ingest_errors()
            )
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            if request.op == "stop":
                break
    finally:
        if frame_ring is not None:
            frame_ring.close()
        if event_ring is not None:
            event_ring.close()
        conn.close()
