"""Benchmark: durable event log — events/sec to disk and tee overhead.

Drives one :class:`repro.serving.MonitorService` carrying 64 concurrent
sessions (default) through a full ``drain()`` three ways: with no event
store attached (the baseline the tee must not slow down), teeing into an
:class:`repro.serving.EventStoreWriter` with ``fsync="never"`` (the OS
owns durability), and with ``fsync="always"`` (every flushed write is
synced — the worst-case durability bill).  One row per mode: engine
drain throughput in events/s, *sustained events/s to disk* (drain plus
the final flush of the writer's ring), bytes and segments written, and
the writer's drop counter (which must stay at zero — a drop here means
the bounded ring was undersized for the workload, not that the engine
stalled).

``--check-eventstore`` gates the tentpole's perf contract in CI: the
``fsync="never"`` tee must cost **< 5 %** of baseline drain throughput
(best of ``--repeats`` runs each, core-gated like the other wall-clock
gates) and must drop nothing.  Results merge into the shared
``BENCH_serving.json`` under the ``"eventstore"`` key.

Run:  PYTHONPATH=src python benchmarks/bench_eventstore.py [--smoke]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

from repro.serving import (
    EventStoreWriter,
    MonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)

N_FEATURES = 38
OVERHEAD_BUDGET = 0.05  # tee tax vs baseline drain throughput


def run_once(monitor, n_sessions: int, n_frames: int, fsync: str | None) -> dict:
    """One measured drain; ``fsync=None`` runs the storeless baseline."""
    trajectories = [
        make_random_walk_trajectory(n_frames, n_features=N_FEATURES, seed=i)
        for i in range(n_sessions)
    ]
    root = tempfile.mkdtemp(prefix="bench-eventstore-")
    store = (
        EventStoreWriter(os.path.join(root, "log"), fsync=fsync)
        if fsync is not None
        else None
    )
    try:
        service = MonitorService(
            monitor,
            max_sessions=n_sessions,
            backend="reference",
            event_store=store,
        )
        for i, trajectory in enumerate(trajectories):
            sid = service.open_session(f"bench-{i:03d}")
            service.feed(sid, trajectory.frames)
        total_events = n_sessions * n_frames
        start = time.perf_counter()
        service.drain(collect=False)
        drain_s = time.perf_counter() - start
        if store is not None:
            store.close()  # drain the ring, seal the segment
        disk_s = time.perf_counter() - start
        stats = store.stats() if store is not None else {}
        return {
            "mode": "baseline" if fsync is None else f"fsync={fsync}",
            "sessions": n_sessions,
            "frames": total_events,
            "events_per_s": total_events / drain_s,
            "disk_events_per_s": (
                total_events / disk_s if store is not None else 0.0
            ),
            "bytes_written": stats.get("bytes_written", 0),
            "segments": stats.get("segments", 0),
            "dropped": stats.get("dropped", 0),
        }
    finally:
        shutil.rmtree(root, ignore_errors=True)


def run_mode(monitor, n_sessions, n_frames, fsync, repeats: int) -> dict:
    """Best-of-``repeats`` row for one mode (max drain throughput)."""
    rows = [
        run_once(monitor, n_sessions, n_frames, fsync) for _ in range(repeats)
    ]
    best = max(rows, key=lambda r: r["events_per_s"])
    best["dropped"] = max(r["dropped"] for r in rows)
    return best


def merge_report(path: str, rows: list[dict], summary: dict) -> None:
    """Fold the eventstore rows into the shared ``BENCH_serving.json``."""
    report: dict = {}
    if os.path.exists(path):
        try:
            with open(path) as fh:
                report = json.load(fh)
        except (OSError, json.JSONDecodeError):
            report = {}
    report["eventstore"] = rows
    report.setdefault("summary", {}).update(summary)
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short trajectories for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--sessions",
        type=int,
        default=64,
        help="concurrent sessions per row (default: %(default)s)",
    )
    parser.add_argument(
        "--frames", type=int, default=None, help="frames per session (override)"
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="runs per mode; the best is reported (default: %(default)s)",
    )
    parser.add_argument(
        "--json",
        default="BENCH_serving.json",
        help="report to merge the eventstore rows into (default: %(default)s)",
    )
    parser.add_argument(
        "--check-eventstore",
        action="store_true",
        help=(
            "exit non-zero unless the fsync=never tee costs < 5% of "
            "baseline drain throughput and drops zero events (only "
            "enforced when >= 2 CPU cores are visible; 1-core runners "
            "still print the rows)"
        ),
    )
    args = parser.parse_args(argv)
    if args.sessions < 1:
        parser.error("--sessions must be >= 1")
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.frames is not None and args.frames < 1:
        parser.error("--frames must be >= 1")
    n_frames = args.frames if args.frames is not None else (60 if args.smoke else 300)
    n_cores = os.cpu_count() or 1

    monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=0)
    print(
        f"event store — {args.sessions} sessions, {n_frames} frames/session, "
        f"{N_FEATURES} features, best of {args.repeats}, "
        f"{n_cores} CPU core(s) visible"
    )
    print(
        f"{'mode':>14} {'events/s':>10} {'to disk':>10} {'bytes':>10} "
        f"{'segs':>5} {'dropped':>8}"
    )
    rows = []
    for fsync in (None, "never", "always"):
        row = run_mode(monitor, args.sessions, n_frames, fsync, args.repeats)
        rows.append(row)
        print(
            f"{row['mode']:>14} {row['events_per_s']:>10.0f} "
            f"{row['disk_events_per_s']:>10.0f} {row['bytes_written']:>10} "
            f"{row['segments']:>5} {row['dropped']:>8}"
        )

    baseline, never, always = rows
    overhead = 1.0 - never["events_per_s"] / baseline["events_per_s"]
    summary = {
        "eventstore_tee_overhead": overhead,
        "eventstore_disk_eps_nofsync": never["disk_events_per_s"],
        "eventstore_disk_eps_fsync": always["disk_events_per_s"],
    }
    print(
        f"\ntee overhead {overhead * 100:+.1f}% of baseline drain "
        f"throughput (budget < {OVERHEAD_BUDGET * 100:.0f}%); "
        f"{never['disk_events_per_s']:.0f} events/s to disk without "
        f"fsync, {always['disk_events_per_s']:.0f} with fsync=always"
    )
    merge_report(args.json, rows, summary)
    print(f"merged eventstore rows into {args.json}")

    if args.check_eventstore:
        if n_cores < 2:
            print(
                "check-eventstore: skipped (needs >= 2 cores for a "
                "stable measurement)"
            )
            return 0
        if overhead >= OVERHEAD_BUDGET:
            print(
                f"FAIL: fsync=never tee cost {overhead * 100:.1f}% of "
                f"baseline drain throughput "
                f"(>= {OVERHEAD_BUDGET * 100:.0f}% budget)",
                file=sys.stderr,
            )
            return 1
        for row in rows[1:]:
            if row["dropped"]:
                print(
                    f"FAIL: {row['mode']} dropped {row['dropped']} events "
                    f"(bounded ring undersized for the workload)",
                    file=sys.stderr,
                )
                return 1
        print("check-eventstore: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
