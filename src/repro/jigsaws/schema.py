"""Constants and scene geometry for the synthetic JIGSAWS data.

The JIGSAWS recordings come from eight subjects (B..I) performing five
trials of each task on the dVRK; the paper uses 39 Suturing
demonstrations under the Leave-One-SuperTrial-Out (LOSO) protocol
(supertrial ``i`` = the i-th trial of every subject).

Positions are in metres in the dVRK's task-space convention; the scene
anchors below define the spatial layout of the dry-lab suturing pad that
the motion primitives move between.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Subject identifiers (JIGSAWS convention).
SUBJECTS: tuple[str, ...] = ("B", "C", "D", "E", "F", "G", "H", "I")

#: Trials per subject; trial index == supertrial index for LOSO.
TRIALS_PER_SUBJECT = 5

#: JIGSAWS kinematics frame rate.
FRAME_RATE_HZ = 30.0

#: Skill categories (JIGSAWS: based on hours of robotic surgery).
SKILL_LEVELS: dict[str, str] = {
    "B": "novice",
    "C": "novice",
    "D": "expert",
    "E": "expert",
    "F": "intermediate",
    "G": "novice",
    "H": "intermediate",
    "I": "novice",
}


@dataclass(frozen=True)
class SuturingAnchors:
    """Key positions (metres) of the dry-lab suturing scene.

    The anchors are the targets the per-gesture motion primitives travel
    between; the coordinate frame is centred on the suturing pad with x
    to the patient's right, y away from the endoscope and z up.
    """

    needle_site: np.ndarray = field(
        default_factory=lambda: np.array([0.050, 0.020, 0.020])
    )
    tissue_entry: np.ndarray = field(
        default_factory=lambda: np.array([0.000, 0.000, 0.010])
    )
    tissue_exit: np.ndarray = field(
        default_factory=lambda: np.array([-0.020, 0.000, 0.010])
    )
    center: np.ndarray = field(default_factory=lambda: np.array([0.000, 0.030, 0.040]))
    left_home: np.ndarray = field(
        default_factory=lambda: np.array([-0.050, 0.040, 0.030])
    )
    right_home: np.ndarray = field(
        default_factory=lambda: np.array([0.050, 0.040, 0.030])
    )
    end_point: np.ndarray = field(
        default_factory=lambda: np.array([0.060, -0.040, 0.030])
    )
    pull_target: np.ndarray = field(
        default_factory=lambda: np.array([-0.060, 0.050, 0.050])
    )
    #: Endoscope view half-extents; excursions beyond mark "out of view".
    view_extent: np.ndarray = field(
        default_factory=lambda: np.array([0.070, 0.060, 0.080])
    )

    def in_view(self, position: np.ndarray) -> bool:
        """True when ``position`` is inside the endoscopic view volume."""
        position = np.asarray(position, dtype=float)
        return bool(np.all(np.abs(position) <= self.view_extent))
