"""Compiled inference plans: fold the scaler, preallocate every buffer.

A :class:`CompiledBackend` compiles one trained ``(scaler, model)`` pair
into a flat list of inference ops, specialised for a fixed input window
shape and a fixed maximum batch (the serving engine's ``max_sessions``):

- **Scaler folding** — standardisation is the affine
  ``(x - mean) / scale`` per feature channel, and the first layer of
  every model in this repo is itself affine in its input (``Dense``,
  ``LSTM`` input projection, ``Conv1D``), so the scaler folds into that
  layer's weights and bias at compile time.  The per-tick ``transform``
  pass and its temporary array disappear.  For ``padding="same"``
  convolutions the folded bias becomes position-dependent near the
  window edges (padded taps contribute zero in scaled space, not
  ``-mean/scale``), so the plan precomputes an ``(out_time, filters)``
  bias — exact, because the window length is fixed.
- **Preallocated scratch** — every op owns output (and workspace)
  buffers sized to ``max_batch`` and writes into ``[:n]`` views, so a
  steady-state forward allocates no array data at all (the
  scratch-reuse test asserts this).  Returned arrays alias scratch:
  valid until the next call.
- **Inference-only kernels** — no ``training`` branches, no per-layer
  dtype coercions, BLAS ``np.matmul`` contractions (trading the
  reference path's bit-exact batch-invariant einsum for throughput),
  dropout elided, batch-norm reduced to one fused multiply-add.
- **Fused LSTM steps** — each timestep computes all four gates in one
  preallocated ``(batch, 4·units)`` buffer with in-place
  sigmoid/tanh; the input projection for all timesteps is one matmul.
- **Optional float32** — ``dtype=np.float32`` stores weights and
  scratch at half the memory bandwidth.  Probabilities then match the
  reference to ~1e-6 relative rather than 1e-12; see
  ``docs/serving.md`` for when that trade is safe.

Float64 plans match :class:`~repro.nn.backends.reference.ReferenceBackend`
within ``atol=1e-6`` (in practice ~1e-12; the property suite sweeps
randomised models to pin this) but are **not** bit-exact and not
batch-size invariant — the reference backend remains the default
wherever the bit-exact parity contract matters.
"""

from __future__ import annotations

import numpy as np

from ...errors import ConfigurationError, NotFittedError, ShapeError
from ..layers.activations import ReLU, Sigmoid, Tanh
from ..layers.conv1d import Conv1D
from ..layers.dense import Dense
from ..layers.dropout import Dropout
from ..layers.normalization import BatchNorm
from ..layers.pooling import Flatten, GlobalAveragePool1D, MaxPool1D
from ..layers.recurrent import LSTM
from ..losses import SigmoidBinaryCrossEntropy, SoftmaxCrossEntropy
from ..model import Sequential
from ..preprocessing import StandardScaler
from .base import InferenceBackend

#: Scratch ceiling of a bulk plan, in windows.  A whole recorded
#: procedure is scored in slabs of at most this many windows — still one
#: GEMM per stage per slab, but the plan's preallocated buffers stay
#: bounded (an LSTM stage's time-projection scratch is ``(batch, window,
#: 4*units)``; at 16384 windows that is tens of MB, not GBs).
BULK_MAX_BATCH = 16384

#: Pre-activation magnitude beyond which the in-place sigmoid clips.
#: ``sigmoid(±60)`` already saturates to 0/1 within ~1e-26 in float64
#: (and well past float32 resolution), so clipping only suppresses
#: ``exp`` overflow warnings, never a representable probability.
_SIGMOID_CLIP = 60.0


def _sigmoid_inplace(a: np.ndarray) -> None:
    """``a <- sigmoid(a)`` with no temporaries."""
    np.clip(a, -_SIGMOID_CLIP, _SIGMOID_CLIP, out=a)
    np.negative(a, out=a)
    np.exp(a, out=a)
    np.add(a, 1.0, out=a)
    np.reciprocal(a, out=a)


def _tile(value, shape, dtype) -> np.ndarray:
    """Materialise ``value`` broadcast to ``shape``, contiguously.

    Ufuncs whose operands broadcast (or are strided views) fall back to
    numpy's buffered iteration, which heap-allocates a transfer buffer
    per call — exactly the steady-state allocation this backend
    promises not to make.  Constant operands (biases, batch-norm
    scale/shift, scaler statistics) are therefore pre-tiled to the full
    batched operand shape once at compile time, so every hot-loop ufunc
    runs the same-shape contiguous fast path.
    """
    return np.ascontiguousarray(
        np.broadcast_to(np.asarray(value, dtype=dtype), shape)
    )


class _Op:
    """One step of the plan: consume ``x`` (first ``n`` rows), return a view."""

    def run(self, x: np.ndarray, n: int) -> np.ndarray:
        raise NotImplementedError


class _StageOp(_Op):
    """Copy (and cast) the raw input into an owned buffer.

    Used in float32 mode so every downstream matmul runs at the plan
    dtype instead of silently upcasting to the input's float64.
    """

    def __init__(self, in_shape, max_batch, dtype, alloc) -> None:
        self.buf = alloc((max_batch, *in_shape), dtype)

    def run(self, x, n):
        out = self.buf[:n]
        out[...] = x
        return out


class _AffineInputOp(_Op):
    """Fallback standardisation ``(x - mean) * inv_scale`` into scratch.

    Only compiled when the first layer is not affine-foldable (no such
    model exists in this repo today); keeps the plan total even then —
    one preallocated buffer instead of ``scaler.transform``'s temporary.
    """

    def __init__(self, mean, inv_scale, in_shape, max_batch, dtype, alloc) -> None:
        full = (max_batch, *in_shape)
        self.mean = _tile(mean, full, dtype)
        self.inv = _tile(inv_scale, full, dtype)
        self.buf = alloc(full, dtype)

    def run(self, x, n):
        out = self.buf[:n]
        out[...] = x
        out -= self.mean[:n]
        out *= self.inv[:n]
        return out


class _DenseOp(_Op):
    """``x @ W + b`` on the last axis (2-D or time-distributed 3-D)."""

    def __init__(self, weight, bias, in_shape, max_batch, dtype, alloc) -> None:
        self.w = np.ascontiguousarray(weight, dtype=dtype)
        out_shape = (max_batch, *in_shape[:-1], self.w.shape[1])
        self.b = _tile(bias, out_shape, dtype)
        self.out = alloc(out_shape, dtype)

    def run(self, x, n):
        out = self.out[:n]
        np.matmul(x, self.w, out=out)
        out += self.b[:n]
        return out


class _ConvOp(_Op):
    """im2col convolution with a preallocated padded buffer and columns.

    ``bias`` is ``(filters,)`` for valid padding and ``(out_time,
    filters)`` for same padding (the scaler fold makes the edge bias
    position-dependent; an unfolded same-pad conv just broadcasts).
    """

    def __init__(
        self, w_kcf, bias, in_shape, max_batch, dtype, alloc, *, left, right
    ) -> None:
        in_time, in_ch = in_shape
        k = w_kcf.shape[0]
        filters = w_kcf.shape[2]
        self.k = k
        self.in_ch = in_ch
        self.in_time = in_time
        self.left = left
        self.out_time = in_time + left + right - k + 1
        self.w_flat = np.ascontiguousarray(
            w_kcf.reshape(k * in_ch, filters), dtype=dtype
        )
        self.bias = _tile(bias, (max_batch, self.out_time, filters), dtype)
        # Pad edges are written once (zeros) and never touched again.
        self.padded = (
            np.zeros((max_batch, in_time + left + right, in_ch), dtype)
            if (left or right)
            else None
        )
        if self.padded is not None:
            alloc.register(self.padded)
        self.cols = alloc((max_batch, self.out_time, k * in_ch), dtype)
        self.out = alloc((max_batch, self.out_time, filters), dtype)

    def run(self, x, n):
        if self.padded is not None:
            padded = self.padded[:n]
            padded[:, self.left : self.left + self.in_time, :] = x
        else:
            padded = x
        cols = self.cols[:n]
        for j in range(self.k):
            cols[:, :, j * self.in_ch : (j + 1) * self.in_ch] = padded[
                :, j : j + self.out_time, :
            ]
        out = self.out[:n]
        flat = cols.reshape(n * self.out_time, self.k * self.in_ch)
        np.matmul(flat, self.w_flat, out=out.reshape(flat.shape[0], out.shape[2]))
        out += self.bias[:n]
        return out


class _LSTMOp(_Op):
    """Fused-gate LSTM: one input projection for all timesteps, one
    ``(batch, 4·units)`` pre-activation buffer per step, gates staged
    into four contiguous blocks so every activation and state update is
    an in-place same-shape ufunc (no broadcast/strided buffering)."""

    def __init__(
        self, wx, wh, bias, units, return_sequences, in_shape, max_batch, dtype, alloc
    ) -> None:
        in_time = in_shape[0]
        u = int(units)
        self.u = u
        self.t = in_time
        self.return_sequences = bool(return_sequences)
        self.wx = np.ascontiguousarray(wx, dtype=dtype)
        self.wh = np.ascontiguousarray(wh, dtype=dtype)
        self.b = _tile(bias, (max_batch, 4 * u), dtype)
        self.xproj = alloc((max_batch, in_time, 4 * u), dtype)
        self.z = alloc((max_batch, 4 * u), dtype)
        self.hh = alloc((max_batch, 4 * u), dtype)
        self.gates = [alloc((max_batch, u), dtype) for _ in range(4)]
        self.h = alloc((max_batch, u), dtype)
        self.c = alloc((max_batch, u), dtype)
        self.tmp = alloc((max_batch, u), dtype)
        self.hs = (
            alloc((max_batch, in_time, u), dtype) if self.return_sequences else None
        )

    def run(self, x, n):
        u, t = self.u, self.t
        xp = self.xproj[:n]
        np.matmul(x.reshape(n * t, -1), self.wx, out=xp.reshape(n * t, 4 * u))
        h, c, z, hh, tmp = self.h[:n], self.c[:n], self.z[:n], self.hh[:n], self.tmp[:n]
        gate_i, gate_f, gate_g, gate_o = (g[:n] for g in self.gates)
        bias = self.b[:n]
        h.fill(0.0)
        c.fill(0.0)
        hs = self.hs[:n] if self.hs is not None else None
        for step in range(t):
            np.matmul(h, self.wh, out=hh)
            z[...] = xp[:, step, :]
            z += hh
            z += bias
            # Column blocks of z are strided; staging them into the
            # contiguous gate buffers keeps the activations buffer-free.
            gate_i[...] = z[:, :u]
            gate_f[...] = z[:, u : 2 * u]
            gate_g[...] = z[:, 2 * u : 3 * u]
            gate_o[...] = z[:, 3 * u :]
            _sigmoid_inplace(gate_i)
            _sigmoid_inplace(gate_f)
            np.tanh(gate_g, out=gate_g)
            _sigmoid_inplace(gate_o)
            np.multiply(gate_i, gate_g, out=tmp)
            np.multiply(c, gate_f, out=c)
            c += tmp
            np.tanh(c, out=tmp)
            np.multiply(gate_o, tmp, out=h)
            if hs is not None:
                hs[:, step, :] = h
        return hs if hs is not None else h


class _ScaleShiftOp(_Op):
    """Inference batch-norm collapsed to ``x * a + b``, in place."""

    def __init__(self, a, b, in_shape, max_batch, dtype) -> None:
        full = (max_batch, *in_shape)
        self.a = _tile(a, full, dtype)
        self.b = _tile(b, full, dtype)

    def run(self, x, n):
        x *= self.a[:n]
        x += self.b[:n]
        return x


class _ReLUOp(_Op):
    def run(self, x, n):
        np.maximum(x, 0.0, out=x)
        return x


class _TanhOp(_Op):
    def run(self, x, n):
        np.tanh(x, out=x)
        return x


class _SigmoidOp(_Op):
    def run(self, x, n):
        _sigmoid_inplace(x)
        return x


class _MaxPoolOp(_Op):
    def __init__(self, pool_size, in_shape, max_batch, dtype, alloc) -> None:
        in_time, channels = in_shape
        self.p = int(pool_size)
        self.out_time = in_time // self.p
        self.out = alloc((max_batch, self.out_time, channels), dtype)

    def run(self, x, n):
        blocks = x[:, : self.out_time * self.p, :].reshape(
            n, self.out_time, self.p, -1
        )
        out = self.out[:n]
        np.max(blocks, axis=2, out=out)
        return out


class _GlobalAveragePoolOp(_Op):
    def __init__(self, in_shape, max_batch, dtype, alloc) -> None:
        self.out = alloc((max_batch, in_shape[1]), dtype)

    def run(self, x, n):
        out = self.out[:n]
        np.mean(x, axis=1, out=out)
        return out


class _FlattenOp(_Op):
    def run(self, x, n):
        return x.reshape(n, -1)


class _SoftmaxHeadOp(_Op):
    """In-place stable softmax over 2-D logits.

    The per-row max/sum reductions land in a ``(batch, 1)`` buffer and
    are broadcast-assigned to a full ``(batch, classes)`` buffer before
    the subtraction/division, keeping those ufuncs on the same-shape
    contiguous fast path.
    """

    def __init__(self, n_classes, max_batch, dtype, alloc) -> None:
        self.red = alloc((max_batch, 1), dtype)
        self.redfull = alloc((max_batch, n_classes), dtype)

    def run(self, x, n):
        red = self.red[:n]
        redfull = self.redfull[:n]
        np.max(x, axis=1, keepdims=True, out=red)
        redfull[...] = red
        x -= redfull
        np.exp(x, out=x)
        np.sum(x, axis=1, keepdims=True, out=red)
        redfull[...] = red
        x /= redfull
        return x


class _SigmoidHeadOp(_Op):
    def run(self, x, n):
        _sigmoid_inplace(x)
        return x


class _Alloc:
    """Scratch allocator that remembers every buffer it hands out."""

    def __init__(self) -> None:
        self.buffers: list[np.ndarray] = []

    def __call__(self, shape, dtype) -> np.ndarray:
        buf = np.empty(shape, dtype=dtype)
        self.buffers.append(buf)
        return buf

    def register(self, buf: np.ndarray) -> None:
        self.buffers.append(buf)


class CompiledBackend(InferenceBackend):
    """Flat, allocation-free inference plan for one trained pair.

    Parameters
    ----------
    scaler / model:
        Fitted :class:`StandardScaler` and built, compiled
        :class:`Sequential`.  The plan snapshots folded copies of the
        weights — retraining the model afterwards does **not** update an
        existing plan; build a new backend.
    max_batch:
        Batch capacity of the scratch buffers.  Calls with more rows are
        served in ``max_batch`` chunks (correct, but each oversize call
        allocates its result array).
    dtype:
        ``np.float64`` (default; matches the reference within
        ``atol=1e-6``) or ``np.float32`` (half the memory bandwidth,
        ~1e-6 relative agreement).
    """

    def __init__(
        self,
        scaler: StandardScaler,
        model: Sequential,
        max_batch: int = 64,
        dtype=np.float64,
    ) -> None:
        if max_batch < 1:
            raise ConfigurationError("max_batch must be >= 1")
        dtype = np.dtype(dtype)
        if dtype not in (np.dtype(np.float64), np.dtype(np.float32)):
            raise ConfigurationError(
                f"CompiledBackend supports float64/float32, got {dtype}"
            )
        if scaler.mean_ is None or scaler.scale_ is None:
            raise NotFittedError(
                "CompiledBackend needs a fitted scaler (mean_/scale_)"
            )
        if not model.built:
            raise NotFittedError("CompiledBackend needs a built model")
        if model.loss is None:
            raise NotFittedError(
                "CompiledBackend needs a compiled model (loss provides the "
                "probability head)"
            )
        self.name = "compiled-f32" if dtype == np.float32 else "compiled"
        self.max_batch = int(max_batch)
        self.dtype = dtype
        self.in_shape = tuple(model.layers[0].input_shape)
        if int(scaler.mean_.shape[0]) != int(self.in_shape[-1]):
            raise ShapeError(
                f"scaler fitted for {scaler.mean_.shape[0]} features but the "
                f"model consumes {self.in_shape[-1]}"
            )
        self._alloc = _Alloc()
        self._ops: list[_Op] = []
        # Source pair, kept only to compile bulk twins on demand.  Like
        # the base plan, a twin snapshots the weights at *its* compile
        # time; the serving/bulk engines rebuild backends when a model
        # is retrained (model-identity check), so the two never diverge.
        self._source = (scaler, model)
        self._bulk: CompiledBackend | None = None
        self._compile(scaler, model)

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _compile(self, scaler: StandardScaler, model: Sequential) -> None:
        mean = np.asarray(scaler.mean_, dtype=np.float64)
        inv = 1.0 / np.asarray(scaler.scale_, dtype=np.float64)
        alloc = self._alloc
        dtype = self.dtype
        mb = self.max_batch

        first = model.layers[0]
        foldable = isinstance(first, (Dense, LSTM, Conv1D))
        if dtype == np.float32 and foldable:
            # Stage once so every matmul runs in float32 instead of
            # upcasting against float64 input.
            self._ops.append(_StageOp(self.in_shape, mb, dtype, alloc))
        if not foldable:
            self._ops.append(
                _AffineInputOp(mean, inv, self.in_shape, mb, dtype, alloc)
            )

        for index, layer in enumerate(model.layers):
            fold = (mean, inv) if (index == 0 and foldable) else None
            op = self._compile_layer(layer, fold, alloc, dtype, mb)
            if op is not None:
                self._ops.append(op)

        logits_shape = tuple(model.layers[-1].output_shape)
        loss = model.loss
        if isinstance(loss, SoftmaxCrossEntropy):
            if len(logits_shape) != 1:
                raise ConfigurationError(
                    "CompiledBackend softmax head needs 2-D logits, got "
                    f"per-sample shape {logits_shape}"
                )
            self._ops.append(_SoftmaxHeadOp(logits_shape[0], mb, dtype, alloc))
        elif isinstance(loss, SigmoidBinaryCrossEntropy):
            self._ops.append(_SigmoidHeadOp())
        else:
            raise ConfigurationError(
                f"CompiledBackend has no probability head for "
                f"{type(loss).__name__}"
            )
        self.prob_shape = logits_shape
        self._multiclass = len(logits_shape) == 1 and logits_shape[0] > 1
        self._cls = alloc((mb,), np.intp) if self._multiclass else None
        self._flags = None if self._multiclass else alloc((mb,), np.int64)

    def _compile_layer(self, layer, fold, alloc, dtype, mb):
        in_shape = tuple(layer.input_shape)
        if isinstance(layer, Dense):
            w = np.asarray(layer.params["W"], dtype=np.float64)
            b = np.asarray(layer.params["b"], dtype=np.float64)
            if fold is not None:
                mean, inv = fold
                w = w * inv[:, None]
                b = b - (mean * inv) @ np.asarray(
                    layer.params["W"], dtype=np.float64
                )
            return _DenseOp(w, b, in_shape, mb, dtype, alloc)
        if isinstance(layer, LSTM):
            wx = np.asarray(layer.params["Wx"], dtype=np.float64)
            b = np.asarray(layer.params["b"], dtype=np.float64)
            if fold is not None:
                mean, inv = fold
                b = b - (mean * inv) @ wx
                wx = wx * inv[:, None]
            return _LSTMOp(
                wx,
                layer.params["Wh"],
                b,
                layer.units,
                layer.return_sequences,
                in_shape,
                mb,
                dtype,
                alloc,
            )
        if isinstance(layer, Conv1D):
            left, right = layer._pad_amounts()
            w = np.asarray(layer.params["W"], dtype=np.float64)
            b = np.asarray(layer.params["b"], dtype=np.float64)
            bias: np.ndarray = b
            if fold is not None:
                mean, inv = fold
                # Per-tap contribution of the mean shift: (k, filters).
                tap_shift = np.einsum("c,kcf->kf", mean * inv, w)
                w = w * inv[None, :, None]
                in_time = in_shape[0]
                out_time = in_time + left + right - layer.kernel_size + 1
                correction = np.zeros((out_time, w.shape[2]))
                for t in range(out_time):
                    for j in range(layer.kernel_size):
                        src = t - left + j
                        if 0 <= src < in_time:
                            correction[t] += tap_shift[j]
                bias = b - correction
                if left == 0 and right == 0:
                    bias = bias[0]  # every position sees every tap
            return _ConvOp(
                w, bias, in_shape, mb, dtype, alloc, left=left, right=right
            )
        if isinstance(layer, BatchNorm):
            assert layer.running_mean is not None and layer.running_var is not None
            inv_std = 1.0 / np.sqrt(layer.running_var + layer.epsilon)
            a = layer.params["gamma"] * inv_std
            return _ScaleShiftOp(
                a, layer.params["beta"] - layer.running_mean * a, in_shape, mb, dtype
            )
        if isinstance(layer, ReLU):
            return _ReLUOp()
        if isinstance(layer, Tanh):
            return _TanhOp()
        if isinstance(layer, Sigmoid):
            return _SigmoidOp()
        if isinstance(layer, Dropout):
            return None  # identity at inference
        if isinstance(layer, MaxPool1D):
            return _MaxPoolOp(layer.pool_size, in_shape, mb, dtype, alloc)
        if isinstance(layer, GlobalAveragePool1D):
            return _GlobalAveragePoolOp(in_shape, mb, dtype, alloc)
        if isinstance(layer, Flatten):
            return _FlattenOp()
        raise ConfigurationError(
            f"CompiledBackend does not support {type(layer).__name__} layers"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def scratch_arrays(self) -> list[np.ndarray]:
        """Every preallocated buffer of the plan (for reuse assertions)."""
        return list(self._alloc.buffers)

    def _forward(self, x: np.ndarray, n: int) -> np.ndarray:
        out = x
        for op in self._ops:
            out = op.run(out, n)
        return out

    def _check(self, windows: np.ndarray) -> np.ndarray:
        x = np.asarray(windows)
        if x.shape[1:] != self.in_shape:
            raise ShapeError(
                f"compiled plan expects windows of shape (n, "
                f"{', '.join(str(s) for s in self.in_shape)}), got {x.shape}"
            )
        return x

    def predict_proba(self, windows: np.ndarray) -> np.ndarray:
        x = self._check(windows)
        n = x.shape[0]
        if n == 0:
            return np.empty((0, *self.prob_shape), dtype=self.dtype)
        if n <= self.max_batch:
            return self._forward(x, n)
        out = np.empty((n, *self.prob_shape), dtype=self.dtype)
        for start in range(0, n, self.max_batch):
            chunk = x[start : start + self.max_batch]
            out[start : start + chunk.shape[0]] = self._forward(
                chunk, chunk.shape[0]
            )
        return out

    def predict(self, windows: np.ndarray) -> np.ndarray:
        x = self._check(windows)
        n = x.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        if n <= self.max_batch:
            return self._predict_batch(x, n)
        out = np.empty(n, dtype=np.int64)
        for start in range(0, n, self.max_batch):
            chunk = x[start : start + self.max_batch]
            out[start : start + chunk.shape[0]] = self._predict_batch(
                chunk, chunk.shape[0]
            )
        return out

    # ------------------------------------------------------------------
    # Bulk offline scoring
    # ------------------------------------------------------------------
    def _bulk_plan(self, n: int) -> "CompiledBackend":
        """A twin plan sized for ``n``-window slabs (grown, cached).

        The serving plan's ``max_batch`` is the session count — far too
        small for offline scoring, where one trajectory yields thousands
        of windows and chunking at 64 would splinter the single fused
        GEMM per stage back into dozens.  The twin is compiled lazily at
        the first oversize bulk call, grows geometrically (so a sweep
        over ever-longer procedures compiles O(log n) plans, not one
        per length) and is capped at :data:`BULK_MAX_BATCH` windows.
        """
        needed = min(int(n), BULK_MAX_BATCH)
        if self._bulk is None or self._bulk.max_batch < needed:
            capacity = max(self.max_batch, 1)
            while capacity < needed:
                capacity *= 2
            scaler, model = self._source
            self._bulk = CompiledBackend(
                scaler,
                model,
                max_batch=min(capacity, BULK_MAX_BATCH),
                dtype=self.dtype,
            )
        return self._bulk

    def forward_bulk(self, windows: np.ndarray) -> np.ndarray:
        """One fused pass over every window — one GEMM per stage.

        Batches up to :data:`BULK_MAX_BATCH` windows run through a
        single bulk-sized plan execution; longer procedures run in
        ``BULK_MAX_BATCH`` slabs (still one GEMM per stage per slab).
        Results alias the bulk plan's scratch when a single slab
        suffices — valid until the next bulk call on this backend.
        """
        x = self._check(windows)
        n = x.shape[0]
        if n == 0 or n <= self.max_batch:
            return self.predict_proba(x)
        plan = self._bulk_plan(n)
        if n <= plan.max_batch:
            return plan._forward(x, n)
        out = np.empty((n, *self.prob_shape), dtype=self.dtype)
        for start in range(0, n, plan.max_batch):
            chunk = x[start : start + plan.max_batch]
            out[start : start + chunk.shape[0]] = plan._forward(
                chunk, chunk.shape[0]
            )
        return out

    def score_bulk(self, windows: np.ndarray) -> np.ndarray:
        """Hard predictions over every window via the bulk plan."""
        x = self._check(windows)
        n = x.shape[0]
        if n == 0 or n <= self.max_batch:
            return self.predict(x)
        plan = self._bulk_plan(n)
        if n <= plan.max_batch:
            return plan._predict_batch(x, n)
        out = np.empty(n, dtype=np.int64)
        for start in range(0, n, plan.max_batch):
            chunk = x[start : start + plan.max_batch]
            out[start : start + chunk.shape[0]] = plan._predict_batch(
                chunk, chunk.shape[0]
            )
        return out

    def _predict_batch(self, x: np.ndarray, n: int) -> np.ndarray:
        probs = self._forward(x, n)
        if self._multiclass:
            assert self._cls is not None
            cls = self._cls[:n]
            np.argmax(probs, axis=1, out=cls)
            return cls
        assert self._flags is not None
        flags = self._flags[:n]
        np.greater_equal(probs.reshape(n, -1)[:, 0], 0.5, out=flags)
        return flags
