"""Tests for repro.kinematics.state."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kinematics.rotations import rotation_from_euler
from repro.kinematics.state import ManipulatorState, N_VARIABLES_PER_ARM, RobotState


class TestManipulatorState:
    def test_vector_round_trip(self):
        state = ManipulatorState(
            position=np.array([0.1, 0.2, 0.3]),
            rotation=rotation_from_euler(0.1, 0.2, 0.3),
            linear_velocity=np.array([1.0, -1.0, 0.5]),
            angular_velocity=np.array([0.0, 0.1, -0.1]),
            grasper_angle=0.7,
        )
        recovered = ManipulatorState.from_vector(state.to_vector())
        assert np.allclose(recovered.position, state.position)
        assert np.allclose(recovered.rotation, state.rotation)
        assert np.allclose(recovered.linear_velocity, state.linear_velocity)
        assert np.allclose(recovered.angular_velocity, state.angular_velocity)
        assert recovered.grasper_angle == pytest.approx(0.7)

    def test_vector_width(self):
        assert ManipulatorState().to_vector().shape == (N_VARIABLES_PER_ARM,)

    def test_vector_layout(self):
        # JIGSAWS ordering: position, rotation, lin vel, ang vel, grasper.
        state = ManipulatorState(grasper_angle=0.9)
        vec = state.to_vector()
        assert vec[18] == pytest.approx(0.9)
        assert np.allclose(vec[3:12].reshape(3, 3), np.eye(3))

    def test_rejects_bad_position(self):
        with pytest.raises(ShapeError):
            ManipulatorState(position=np.zeros(2))

    def test_rejects_bad_rotation(self):
        with pytest.raises(ShapeError):
            ManipulatorState(rotation=np.zeros((2, 3)))

    def test_rejects_bad_vector(self):
        with pytest.raises(ShapeError):
            ManipulatorState.from_vector(np.zeros(18))

    def test_has_valid_rotation(self):
        assert ManipulatorState().has_valid_rotation()
        bad = ManipulatorState()
        bad.rotation = 2 * np.eye(3)
        assert not bad.has_valid_rotation()

    def test_copy_is_deep(self):
        state = ManipulatorState()
        clone = state.copy()
        clone.position[0] = 99.0
        assert state.position[0] == 0.0


class TestRobotState:
    def test_round_trip(self):
        robot = RobotState(
            left=ManipulatorState(position=np.array([1.0, 2.0, 3.0])),
            right=ManipulatorState(grasper_angle=1.2),
        )
        recovered = RobotState.from_vector(robot.to_vector())
        assert np.allclose(recovered.left.position, [1.0, 2.0, 3.0])
        assert recovered.right.grasper_angle == pytest.approx(1.2)

    def test_width(self):
        assert RobotState().to_vector().shape == (2 * N_VARIABLES_PER_ARM,)

    def test_left_comes_first(self):
        robot = RobotState(left=ManipulatorState(grasper_angle=0.5))
        vec = robot.to_vector()
        assert vec[18] == pytest.approx(0.5)
        assert vec[37] == pytest.approx(0.0)

    def test_rejects_bad_width(self):
        with pytest.raises(ShapeError):
            RobotState.from_vector(np.zeros(37))
