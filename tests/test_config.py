"""Tests for repro.config."""

import numpy as np
import pytest

from repro.config import (
    MonitorConfig,
    TrainingConfig,
    WindowConfig,
    as_generator,
    frames_to_ms,
    ms_to_frames,
)
from repro.errors import ConfigurationError


class TestAsGenerator:
    def test_none_yields_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = as_generator(42).integers(0, 1000, 10)
        b = as_generator(42).integers(0, 1000, 10)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_rejects_bad_type(self):
        with pytest.raises(ConfigurationError):
            as_generator("not a seed")


class TestFrameConversion:
    def test_round_trip(self):
        assert ms_to_frames(frames_to_ms(17, 30.0), 30.0) == pytest.approx(17)

    def test_paper_values(self):
        # The paper reports -1.7 frames as -57 ms at 30 Hz.
        assert frames_to_ms(-1.7, 30.0) == pytest.approx(-56.7, abs=0.1)
        # And -50.8 frames as about -1693 ms.
        assert frames_to_ms(-50.8, 30.0) == pytest.approx(-1693, abs=1)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError):
            frames_to_ms(1, 0.0)
        with pytest.raises(ConfigurationError):
            ms_to_frames(1, -5.0)


class TestWindowConfig:
    def test_n_windows_basic(self):
        cfg = WindowConfig(window=5, stride=1)
        assert cfg.n_windows(5) == 1
        assert cfg.n_windows(10) == 6
        assert cfg.n_windows(4) == 0

    def test_n_windows_stride(self):
        cfg = WindowConfig(window=4, stride=3)
        assert cfg.n_windows(10) == 3  # starts at 0, 3, 6

    @pytest.mark.parametrize("window,stride", [(0, 1), (5, 0), (-1, 2)])
    def test_rejects_invalid(self, window, stride):
        with pytest.raises(ConfigurationError):
            WindowConfig(window=window, stride=stride)


class TestTrainingConfig:
    def test_defaults_valid(self):
        cfg = TrainingConfig()
        assert cfg.learning_rate > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0.0},
            {"batch_size": 0},
            {"max_epochs": 0},
            {"validation_fraction": 1.0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainingConfig(**kwargs)


class TestMonitorConfig:
    def test_defaults(self):
        cfg = MonitorConfig()
        assert cfg.frame_rate_hz == 30.0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            MonitorConfig(unsafe_vote_threshold=1.0)
