"""Minimum-jerk motion primitives.

Human reaching movements (and the motion planners used in tele-operation
research) are well modelled by minimum-jerk trajectories.  The Block
Transfer demonstrations are stitched together from minimum-jerk segments
between task waypoints.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ShapeError


def minimum_jerk_profile(n_steps: int) -> np.ndarray:
    """Normalised minimum-jerk position profile ``s(t)`` on [0, 1].

    ``s(t) = 10 t^3 - 15 t^4 + 6 t^5`` sampled at ``n_steps`` points with
    ``s(0) = 0`` and ``s(1) = 1``; velocity and acceleration vanish at
    both ends.
    """
    if n_steps < 2:
        raise ConfigurationError("n_steps must be >= 2")
    t = np.linspace(0.0, 1.0, n_steps)
    return 10.0 * t**3 - 15.0 * t**4 + 6.0 * t**5


def minimum_jerk_segment(
    start: np.ndarray, end: np.ndarray, n_steps: int
) -> np.ndarray:
    """Minimum-jerk interpolation between two points.

    Parameters
    ----------
    start, end:
        Way-points of shape ``(dims,)``.
    n_steps:
        Number of samples including both endpoints.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_steps, dims)``.
    """
    start = np.atleast_1d(np.asarray(start, dtype=float))
    end = np.atleast_1d(np.asarray(end, dtype=float))
    if start.shape != end.shape:
        raise ShapeError(f"start {start.shape} and end {end.shape} disagree")
    s = minimum_jerk_profile(n_steps)[:, None]
    return start[None, :] + s * (end - start)[None, :]


def waypoint_trajectory(
    waypoints: np.ndarray,
    segment_steps: list[int],
) -> np.ndarray:
    """Chain minimum-jerk segments through a waypoint list.

    Parameters
    ----------
    waypoints:
        Array of shape ``(n_waypoints, dims)``.
    segment_steps:
        Sample count per segment, length ``n_waypoints - 1``.  Consecutive
        segments share their junction waypoint, which is emitted once.

    Returns
    -------
    numpy.ndarray
        Array of shape ``(sum(segment_steps) - (n_segments - 1), dims)``.
    """
    waypoints = np.asarray(waypoints, dtype=float)
    if waypoints.ndim != 2 or waypoints.shape[0] < 2:
        raise ShapeError(
            f"waypoints must be (n >= 2, dims), got shape {waypoints.shape}"
        )
    n_segments = waypoints.shape[0] - 1
    if len(segment_steps) != n_segments:
        raise ConfigurationError(
            f"need {n_segments} segment step counts, got {len(segment_steps)}"
        )
    pieces: list[np.ndarray] = []
    for i in range(n_segments):
        seg = minimum_jerk_segment(waypoints[i], waypoints[i + 1], segment_steps[i])
        pieces.append(seg if i == 0 else seg[1:])
    return np.concatenate(pieces, axis=0)


def finite_difference_velocity(
    positions: np.ndarray, sample_rate_hz: float
) -> np.ndarray:
    """Central-difference velocity estimate for a position time series.

    End points use one-sided differences so the output length matches the
    input length.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.ndim != 2 or positions.shape[0] < 2:
        raise ShapeError(
            f"positions must be (n >= 2, dims), got shape {positions.shape}"
        )
    if sample_rate_hz <= 0:
        raise ConfigurationError("sample_rate_hz must be positive")
    dt = 1.0 / sample_rate_hz
    velocity = np.gradient(positions, dt, axis=0)
    return velocity
