"""Fault-injection study on the simulated Raven II (paper Section IV-B).

Demonstrates the experimental substrate of the paper's Table III:

1. plan fault-free Block Transfer demonstrations with two synthetic
   tele-operators;
2. perturb the commanded kinematics with grasper-angle and Cartesian
   faults;
3. replay the faulty commands through the physics-lite simulator and
   observe the resulting failures (block drops, drop-off failures);
4. cross-check one failure with the vision-based labeler (SSIM /
   contour tracking / DTW), the paper's orthogonal detection method;
5. score every faulty trial with a safety monitor through the bulk
   offline engine (:mod:`repro.serving.bulk`) — one fused batch per
   pipeline stage per trajectory — and report detections plus the
   engine's frames/sec.

Run:  python examples/fault_injection_campaign.py
"""

import numpy as np

from repro.faults import (
    CartesianFault,
    FaultInjector,
    FaultSpec,
    FaultWindow,
    GrasperAngleFault,
    run_campaign,
)
from repro.simulation import (
    RavenSimulator,
    VirtualCamera,
    Workspace,
    generate_demonstration,
)
from repro.serving import make_synthetic_monitor
from repro.simulation.teleop import DEFAULT_OPERATORS
from repro.vision import detect_failure


def single_fault_walkthrough() -> None:
    """Inject one fault and trace it to a physical + visual failure."""
    print("--- single fault walkthrough ---")
    workspace = Workspace()
    camera = VirtualCamera(workspace.extent_mm)
    simulator = RavenSimulator(workspace=workspace, camera=camera, rng=0)

    reference_commands = generate_demonstration(
        DEFAULT_OPERATORS[0], workspace=workspace, rng=1, sample_rate_hz=50.0
    )
    reference = simulator.run(reference_commands)
    print(f"fault-free trial outcome: {reference.outcome.value}")

    # A mid-carry grasper-angle attack: the jaws are driven to 1.3 rad
    # over 55-70% of the trajectory (paper Table III, high-angle band).
    spec = FaultSpec(
        grasper=GrasperAngleFault(target_rad=1.3, window=FaultWindow(0.55, 0.70)),
        cartesian=CartesianFault(deviation_mm=6.0, window=FaultWindow(0.50, 0.60)),
    )
    print(f"injecting: {spec.describe()}")
    faulty_commands = FaultInjector().inject(
        generate_demonstration(
            DEFAULT_OPERATORS[1], workspace=workspace, rng=2, sample_rate_hz=50.0
        ),
        spec,
    )
    faulty = simulator.run(faulty_commands)
    print(f"faulty trial outcome:     {faulty.outcome.value}")
    print(f"  grasped at frame {faulty.grasp_frame}, lost at {faulty.release_frame}")

    label = detect_failure(faulty, reference)
    print(
        "vision-based label:       "
        f"block_drop={label.block_drop} dropoff={label.dropoff_failure} "
        f"(DTW deviation {label.dtw_deviation:.1f} px)"
    )


def mini_campaign() -> None:
    """A scaled-down Table III sweep, monitored by the bulk engine."""
    print("\n--- mini campaign (10% of the paper's 651 injections) ---")
    # A synthetic monitor keeps the example instant (training the real
    # two-stage pipeline takes CPU-minutes); swap in a trained
    # SafetyMonitor for meaningful detections.  Every faulty trial is
    # scored inline through the bulk offline engine: one fused batch per
    # pipeline stage, compiled plans shared across the whole campaign.
    monitor = make_synthetic_monitor(n_features=38, seed=0)
    result = run_campaign(
        scale=0.10,
        sample_rate_hz=50.0,
        rng=0,
        monitor=monitor,
        monitor_backend="compiled",
    )
    print(f"injections: {result.total_injections}")
    print(
        f"block drops: {result.total_block_drops}, "
        f"dropoff failures: {result.total_dropoff_failures}"
    )
    scored_frames = sum(len(o.unsafe_scores) for o in result.monitor_outputs)
    scored_s = sum(o.metadata["wall_ms"] for o in result.monitor_outputs) / 1000.0
    print(
        f"monitor: {result.total_detected}/{result.total_injections} "
        f"trials flagged, {scored_frames} frames scored at "
        f"{scored_frames / scored_s:,.0f} frames/sec (bulk engine, "
        f"compiled backend)"
    )
    print(f"{'grasper bin':>14} {'window':>12} {'n':>4} {'%drop':>6} {'%dropoff':>9}")
    aggregated: dict[tuple, list[int]] = {}
    for cell in result.cells:
        key = (cell.cell.grasper_rad, cell.cell.grasper_window)
        stats = aggregated.setdefault(key, [0, 0, 0])
        stats[0] += cell.n_injections
        stats[1] += cell.block_drops
        stats[2] += cell.dropoff_failures
    for (grasper, window), (n, drops, dropoffs) in aggregated.items():
        print(
            f"{grasper!s:>14} {window!s:>12} {n:>4} "
            f"{100 * drops / n:>5.0f}% {100 * dropoffs / n:>8.0f}%"
        )


if __name__ == "__main__":
    single_fault_walkthrough()
    mini_campaign()
