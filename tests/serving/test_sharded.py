"""Tests for the sharded multi-process serving layer.

Covers the hard requirement of the sharding tentpole — a K-shard
service is **bit-identical** to one local :class:`MonitorService` — plus
worker lifecycle: crash detection (sessions reported failed, survivors
keep ticking), drain-and-rebalance on shard removal, and the asyncio
front-end.
"""

import asyncio
import os
import signal
import time

import numpy as np
import pytest

from repro.errors import ConfigurationError, DatasetError, ShapeError, WorkerError
from repro.serving import (
    AsyncShardedMonitor,
    MonitorService,
    ServiceStats,
    ShardedMonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
    suggest_shard_count,
)

N_FEATURES = 10


@pytest.fixture(scope="module")
def monitor():
    return make_synthetic_monitor(n_features=N_FEATURES, seed=0)


def make_fleet(n_sessions, base_seed=100, frames=40, step=5):
    """Named trajectories of staggered lengths for a session fleet."""
    return {
        f"proc-{i}": make_random_walk_trajectory(
            frames + step * i, n_features=N_FEATURES, seed=base_seed + i
        )
        for i in range(n_sessions)
    }


def single_service_reference(monitor, fleet):
    """Events and results from one local MonitorService over the fleet."""
    service = MonitorService(monitor, max_sessions=len(fleet))
    for session_id, trajectory in fleet.items():
        service.open_session(session_id)
        service.feed(session_id, trajectory.frames)
    events = service.drain()
    results = {sid: service.close_session(sid) for sid in fleet}
    return events, results


def event_key(event):
    return (event.session_id, event.frame_index, event.gesture, event.score, event.flag)


class TestShardedParity:
    @pytest.mark.parametrize("n_shards", [1, 2, 4])
    def test_sharded_matches_single_service_bit_for_bit(self, monitor, n_shards):
        """The tentpole invariant: K workers, same events, same timelines —
        including the *order* of the merged event stream."""
        fleet = make_fleet(6)
        ref_events, ref_results = single_service_reference(monitor, fleet)
        with ShardedMonitorService(
            monitor, n_shards=n_shards, max_sessions_per_shard=8
        ) as service:
            for session_id, trajectory in fleet.items():
                service.open_session(session_id)
                service.feed(session_id, trajectory.frames)
            events = service.drain()
            assert [event_key(e) for e in events] == [
                event_key(e) for e in ref_events
            ]
            for session_id in fleet:
                result = service.close_session(session_id)
                reference = ref_results[session_id]
                assert np.array_equal(result.gestures, reference.gestures)
                assert np.array_equal(result.unsafe_scores, reference.unsafe_scores)
                assert np.array_equal(result.unsafe_flags, reference.unsafe_flags)

    def test_tick_by_tick_matches_single_service(self, monitor):
        """Interactive ticking (not just drain) merges shard events in the
        exact order a single service would emit them."""
        fleet = make_fleet(5, base_seed=200, frames=25)
        reference = MonitorService(monitor, max_sessions=8)
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=8
        ) as service:
            for session_id, trajectory in fleet.items():
                for target in (service, reference):
                    target.open_session(session_id)
                    target.feed(session_id, trajectory.frames)
            while reference.has_pending:
                sharded_events = service.tick()
                local_events = reference.tick()
                assert [event_key(e) for e in sharded_events] == [
                    event_key(e) for e in local_events
                ]
            assert not service.has_pending

    def test_chunked_feeds_and_staggered_joins(self, monitor):
        """Sessions fed in chunks and opened mid-flight still reproduce
        their isolated stream() runs."""
        early = make_random_walk_trajectory(50, n_features=N_FEATURES, seed=300)
        late = make_random_walk_trajectory(35, n_features=N_FEATURES, seed=301)
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=4
        ) as service:
            service.open_session("early")
            half = early.n_frames // 2
            service.feed("early", early.frames[:half])
            for _ in range(10):
                service.tick()
            service.open_session("late")
            service.feed("late", late.frames)
            service.feed("early", early.frames[half:])
            service.drain(collect=False)
            for session_id, trajectory in (("early", early), ("late", late)):
                result = service.close_session(session_id)
                gestures, scores = [], []
                for _, gesture, score, _ in monitor.stream(trajectory):
                    gestures.append(gesture)
                    scores.append(score)
                assert np.array_equal(result.gestures, np.asarray(gestures))
                assert np.array_equal(result.unsafe_scores, np.asarray(scores))


class TestBackendSelection:
    @pytest.mark.parametrize("n_shards", [1, 2])
    def test_sharded_compiled_matches_local_compiled(self, monitor, n_shards):
        """The parity matrix under the compiled backend: K shards
        reproduce one local compiled MonitorService — gestures, event
        order and flags exactly, scores bit-for-bit, because every
        worker compiles the identical plan from the same snapshot and
        sees the same per-shard batches."""
        fleet = make_fleet(5, base_seed=950, frames=30)
        local = MonitorService(monitor, max_sessions=8, backend="compiled")
        with ShardedMonitorService(
            monitor,
            n_shards=n_shards,
            max_sessions_per_shard=8,
            backend="compiled",
        ) as service:
            assert service.backend == "compiled"
            for session_id, trajectory in fleet.items():
                for target in (service, local):
                    target.open_session(session_id)
                    target.feed(session_id, trajectory.frames)
            sharded_events = service.drain()
            local_events = local.drain()
        assert [
            (e.session_id, e.frame_index, e.gesture, e.flag)
            for e in sharded_events
        ] == [
            (e.session_id, e.frame_index, e.gesture, e.flag)
            for e in local_events
        ]
        if n_shards == 1:
            # One shard sees the exact batches the local engine saw, so
            # even the BLAS path reproduces scores bit for bit.
            assert [e.score for e in sharded_events] == [
                e.score for e in local_events
            ]
        else:
            np.testing.assert_allclose(
                [e.score for e in sharded_events],
                [e.score for e in local_events],
                atol=1e-6,
            )

    def test_backend_resolves_from_snapshot(self, monitor):
        """A snapshot carrying a backend choice configures the whole
        fleet; an explicit argument overrides it."""
        from repro.serving import monitor_to_bytes

        blob = monitor_to_bytes(monitor, backend="compiled")
        with ShardedMonitorService(
            monitor_bytes=blob, n_shards=1, max_sessions_per_shard=2
        ) as service:
            assert service.backend == "compiled"
        with ShardedMonitorService(
            monitor_bytes=blob,
            n_shards=1,
            max_sessions_per_shard=2,
            backend="reference",
        ) as service:
            assert service.backend == "reference"

    def test_unknown_backend_rejected_before_spawning(self, monitor):
        with pytest.raises(ConfigurationError, match="unknown inference backend"):
            ShardedMonitorService(monitor, n_shards=1, backend="turbo")

    def test_tampered_snapshot_backend_rejected_before_spawning(self, monitor):
        """An unknown backend name inside the snapshot must fail at
        construction, not as opaque worker crashes at spawn."""
        import io
        import json

        from repro.serving import monitor_to_bytes

        blob = monitor_to_bytes(monitor)
        with np.load(io.BytesIO(blob)) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(bytes(arrays["__meta__"]).decode("utf-8"))
        meta["serving"] = {"backend": "turbo"}
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode("utf-8"), dtype=np.uint8
        ).copy()
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        with pytest.raises(ConfigurationError, match="unknown inference backend"):
            ShardedMonitorService(
                monitor_bytes=buffer.getvalue(),
                n_shards=1,
                max_sessions_per_shard=2,
            )


class TestPlacementAndLifecycle:
    def test_placement_is_deterministic_and_uses_multiple_shards(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=4, max_sessions_per_shard=16
        ) as service:
            ids = [service.open_session(f"theatre-{i}") for i in range(16)]
            placement = {sid: service.shard_of(sid) for sid in ids}
            # Consistent hashing: same ids always land on the same shards.
            assert placement == {
                sid: service.shard_of(sid) for sid in ids
            }
            assert len(set(placement.values())) > 1

    def test_same_key_same_shard_across_services(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=3, max_sessions_per_shard=4
        ) as a, ShardedMonitorService(
            monitor, n_shards=3, max_sessions_per_shard=4
        ) as b:
            for key in ("alpha", "beta", "gamma"):
                a.open_session(key)
                b.open_session(key)
                assert a.shard_of(key) == b.shard_of(key)

    def test_shard_capacity_errors_propagate(self, monitor):
        with ShardedMonitorService(
            monitor, n_shards=1, max_sessions_per_shard=1
        ) as service:
            service.open_session("only")
            with pytest.raises(ConfigurationError):
                service.open_session("overflow")
            with pytest.raises(ConfigurationError):
                service.open_session("only")  # duplicate id

    def test_remote_errors_keep_their_types(self, monitor):
        """Worker-side exceptions cross the pipe as their repro.errors
        classes, and the worker survives them."""
        with ShardedMonitorService(
            monitor, n_shards=1, max_sessions_per_shard=4
        ) as service:
            with pytest.raises(DatasetError):
                service.feed("ghost", np.zeros((2, N_FEATURES)))
            session_id = service.open_session()
            with pytest.raises(ShapeError):
                service.feed(session_id, np.zeros((2, N_FEATURES + 3)))
            service.feed(session_id, np.zeros((3, N_FEATURES)))
            assert len(service.drain()) == 3

    def test_remove_shard_migrates_and_rebalances(self, monitor):
        """remove_shard live-migrates the shard's sessions onto the
        survivors — nothing closes, no frame is dropped, and the moved
        sessions finish with their full timelines."""
        fleet = make_fleet(6, base_seed=400, frames=20)
        with ShardedMonitorService(
            monitor, n_shards=3, max_sessions_per_shard=16
        ) as service:
            for session_id, trajectory in fleet.items():
                service.open_session(session_id)
                service.feed(session_id, trajectory.frames)
            target = service.shard_of(next(iter(fleet)))
            on_target = {
                sid for sid in fleet if service.shard_of(sid) == target
            }
            moved = service.remove_shard(target)
            # Every session on the removed shard migrated to a survivor
            # and is still open.
            assert set(moved) == on_target
            assert target not in service.shard_indices
            for session_id, new_shard in moved.items():
                assert new_shard != target
                assert service.shard_of(session_id) == new_shard
            assert service.n_open_sessions == len(fleet)
            # Future placements rebalance onto survivors only.
            for i in range(8):
                session_id = service.open_session(f"rebalanced-{i}")
                assert service.shard_of(session_id) != target
            # Every original session — migrated or not — drains to its
            # complete timeline.
            service.drain(collect=False)
            for session_id in fleet:
                result = service.close_session(session_id)
                assert result.n_frames == fleet[session_id].n_frames
            assert not service.failed_sessions

    def test_remove_shard_events_survive_without_timelines(self, monitor):
        """Sessions opened with record_timeline=False have no timeline
        to fall back on, so migration must preserve their un-ticked
        frames: the post-removal drain delivers every event exactly
        once."""
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=8
        ) as service:
            sids = [
                service.open_session(f"proc-{i}", record_timeline=False)
                for i in range(4)
            ]
            for i, sid in enumerate(sids):
                service.feed(
                    sid,
                    make_random_walk_trajectory(
                        15, n_features=N_FEATURES, seed=450 + i
                    ).frames,
                )
            target = service.shard_of(sids[0])
            moved = service.remove_shard(target)
            assert moved  # at least one session actually migrated
            events = service.drain()
            delivered = {}
            for event in events:
                delivered.setdefault(event.session_id, []).append(
                    event.frame_index
                )
            for sid in sids:
                assert delivered[sid] == list(range(15))
            for sid in sids:  # no timeline was recorded anywhere
                assert service.close_session(sid).n_frames == 0

    def test_close_is_idempotent_and_stops_workers(self, monitor):
        service = ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=2
        )
        processes = [h.process for h in service._shards.values()]
        service.close()
        service.close()
        for process in processes:
            assert not process.is_alive()

    def test_use_after_close_raises_cleanly(self, monitor):
        service = ShardedMonitorService(
            monitor, n_shards=1, max_sessions_per_shard=2
        )
        session_id = service.open_session()
        service.close()
        with pytest.raises(ConfigurationError, match="closed"):
            service.open_session()
        with pytest.raises(ConfigurationError, match="closed"):
            service.feed(session_id, np.zeros((1, N_FEATURES)))
        with pytest.raises(ConfigurationError, match="closed"):
            service.close_session(session_id)


class TestWorkerCrash:
    def _open_fleet(self, service, n=8, frames=40):
        sids = []
        for i in range(n):
            sid = service.open_session(f"proc-{i}")
            service.feed(
                sid,
                make_random_walk_trajectory(
                    frames, n_features=N_FEATURES, seed=500 + i
                ).frames,
            )
            sids.append(sid)
        return sids

    def _kill_shard(self, service, shard):
        os.kill(service._shards[shard].process.pid, signal.SIGKILL)
        deadline = time.monotonic() + 5.0
        while service._shards[shard].process.is_alive():
            if time.monotonic() > deadline:  # pragma: no cover
                pytest.fail("SIGKILLed worker did not exit")
            time.sleep(0.01)

    def test_killed_shard_fails_its_sessions_not_others(self, monitor):
        """Kill one worker mid-flight: its sessions surface as terminal
        error events (flag=True, never silently dropped) while every
        other shard keeps ticking to completion."""
        with ShardedMonitorService(
            monitor, n_shards=4, max_sessions_per_shard=8
        ) as service:
            sids = self._open_fleet(service)
            placement = {sid: service.shard_of(sid) for sid in sids}
            assert len(set(placement.values())) >= 2
            for _ in range(5):
                service.tick()
            victim_shard = placement[sids[0]]
            victims = {s for s, sh in placement.items() if sh == victim_shard}
            survivors = set(sids) - victims
            self._kill_shard(service, victim_shard)

            events = service.tick()
            crash_events = [e for e in events if e.error is not None]
            live_events = [e for e in events if e.error is None]
            # One terminal event per lost session, flagged unsafe.
            assert {e.session_id for e in crash_events} == victims
            assert all(e.flag for e in crash_events)
            assert all(e.frame_index == 5 for e in crash_events)
            # Healthy shards keep ticking the same tick.
            assert {e.session_id for e in live_events} == survivors
            # Failed sessions are tracked, not silently dropped.
            assert set(service.failed_sessions) == victims
            for sid in victims:
                with pytest.raises(WorkerError):
                    service.feed(sid, np.zeros((1, N_FEATURES)))
                with pytest.raises(WorkerError):
                    service.close_session(sid)
            # Survivors drain and close with full timelines.
            service.drain(collect=False)
            for sid in survivors:
                assert service.close_session(sid).n_frames == 40
            # New sessions rebalance off the dead shard.
            replacement = service.open_session("replacement")
            assert service.shard_of(replacement) in service.shard_indices
            assert victim_shard not in service.shard_indices

    def test_crash_detected_during_feed_is_not_lost(self, monitor):
        """A crash first observed by feed() raises for that session and
        the other lost sessions' terminal events still surface."""
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=8
        ) as service:
            sids = self._open_fleet(service, n=6, frames=10)
            placement = {sid: service.shard_of(sid) for sid in sids}
            victim_shard = placement[sids[0]]
            victims = {s for s, sh in placement.items() if sh == victim_shard}
            self._kill_shard(service, victim_shard)
            with pytest.raises(WorkerError):
                service.feed(sids[0], np.zeros((1, N_FEATURES)))
            events = service.drain()
            crash_events = [e for e in events if e.error is not None]
            assert {e.session_id for e in crash_events} == victims
            assert set(service.failed_sessions) == victims

    def test_crash_frame_index_exact_after_uncollected_drain(self, monitor):
        """drain(collect=False) returns no events, but the workers'
        progress reports keep the router's frame accounting exact — a
        later crash event must report the true number of frames served."""
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=8
        ) as service:
            sids = self._open_fleet(service, n=4, frames=30)
            service.drain(collect=False)
            victim_shard = service.shard_of(sids[0])
            victims = {s for s in sids if service.shard_of(s) == victim_shard}
            self._kill_shard(service, victim_shard)
            for sid in sids:  # give every session fresh pending input
                if sid not in victims:
                    service.feed(sid, np.zeros((1, N_FEATURES)))
            events = service.tick()
            crash_events = [e for e in events if e.error is not None]
            assert {e.session_id for e in crash_events} == victims
            assert all(e.frame_index == 30 for e in crash_events)


class TestAsyncFrontend:
    def test_feed_events_close_roundtrip(self, monitor):
        fleet = make_fleet(4, base_seed=600, frames=25, step=0)

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=4
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    for session_id, trajectory in fleet.items():
                        await frontend.open_session(session_id)
                        await frontend.feed(session_id, trajectory.frames)
                    expected = sum(t.n_frames for t in fleet.values())
                    per_session = {}
                    count = 0
                    async for event in frontend.events():
                        per_session.setdefault(event.session_id, []).append(event)
                        count += 1
                        if count == expected:
                            break
                    results = {
                        sid: await frontend.close_session(sid) for sid in fleet
                    }
                return per_session, results

        per_session, results = asyncio.run(run())
        for session_id, trajectory in fleet.items():
            events = per_session[session_id]
            # Per-session frame order is preserved across the merge.
            assert [e.frame_index for e in events] == list(
                range(trajectory.n_frames)
            )
            gestures, scores = [], []
            for _, gesture, score, _ in monitor.stream(trajectory):
                gestures.append(gesture)
                scores.append(score)
            assert [e.gesture for e in events] == gestures
            assert [e.score for e in events] == scores
            assert np.array_equal(
                results[session_id].unsafe_scores, np.asarray(scores)
            )

    def test_incremental_async_ingest(self, monitor):
        """Frames fed while the tickers are already running are processed
        without explicit tick calls, and drain() parks until done."""
        trajectory = make_random_walk_trajectory(
            30, n_features=N_FEATURES, seed=700
        )

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=4
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    session_id = await frontend.open_session()
                    for start in range(0, 30, 10):
                        await frontend.feed(
                            session_id, trajectory.frames[start : start + 10]
                        )
                        await asyncio.sleep(0)
                    await frontend.drain()
                    return await frontend.close_session(session_id)

        result = asyncio.run(run())
        assert result.n_frames == 30
        gestures = [g for _, g, _, _ in monitor.stream(trajectory)]
        assert np.array_equal(result.gestures, np.asarray(gestures))

    def test_async_feed_crash_events_not_stranded(self, monitor):
        """A crash discovered by feed() (no shard pending, tickers all
        parked) must still deliver the lost sessions' terminal events to
        the stream — nothing may depend on a later tick happening."""

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=8
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    sids = []
                    for i in range(6):
                        sid = await frontend.open_session(f"proc-{i}")
                        await frontend.feed(
                            sid,
                            make_random_walk_trajectory(
                                10, n_features=N_FEATURES, seed=850 + i
                            ).frames,
                        )
                        sids.append(sid)
                    await frontend.drain()  # everything idle, tickers parked
                    placement = {sid: service.shard_of(sid) for sid in sids}
                    victim_shard = placement[sids[0]]
                    victims = {
                        s for s, sh in placement.items() if sh == victim_shard
                    }
                    process = service._shards[victim_shard].process
                    os.kill(process.pid, signal.SIGKILL)
                    process.join(5.0)
                    with pytest.raises(WorkerError):
                        await frontend.feed(
                            sids[0], np.zeros((1, N_FEATURES))
                        )
                    # The queue still holds the normal events from the
                    # drain; the crash events must follow them.
                    crash_events = []
                    async for event in frontend.events():
                        if event.error is not None:
                            crash_events.append(event)
                            if len(crash_events) == len(victims):
                                break
                    return victims, crash_events

        victims, crash_events = asyncio.run(run())
        assert {e.session_id for e in crash_events} == victims
        assert all(e.flag for e in crash_events)

    def test_async_idle_shard_crash_surfaces_via_liveness_poll(self, monitor):
        """A worker dying while its shard is idle (tickers parked, no
        exchange to break) must still surface terminal events, via the
        parked tickers' periodic liveness poll."""

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=8
            ) as service:
                async with AsyncShardedMonitor(
                    service, poll_interval_s=0.05
                ) as frontend:
                    sids = []
                    for i in range(4):
                        sid = await frontend.open_session(f"proc-{i}")
                        await frontend.feed(
                            sid,
                            make_random_walk_trajectory(
                                8, n_features=N_FEATURES, seed=870 + i
                            ).frames,
                        )
                        sids.append(sid)
                    await frontend.drain()  # fleet idle, tickers parked
                    placement = {sid: service.shard_of(sid) for sid in sids}
                    victim_shard = placement[sids[0]]
                    victims = {
                        s for s, sh in placement.items() if sh == victim_shard
                    }
                    process = service._shards[victim_shard].process
                    os.kill(process.pid, signal.SIGKILL)
                    process.join(5.0)
                    # No feed, no tick — only the liveness poll can act.
                    crash_events = []
                    async for event in frontend.events():
                        if event.error is not None:
                            crash_events.append(event)
                            if len(crash_events) == len(victims):
                                break
                    return victims, crash_events

        victims, crash_events = asyncio.run(run())
        assert {e.session_id for e in crash_events} == victims
        assert all(e.flag for e in crash_events)

    def test_async_crash_surfaces_in_event_stream(self, monitor):
        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=8
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    sids = []
                    for i in range(6):
                        sid = await frontend.open_session(f"proc-{i}")
                        await frontend.feed(
                            sid,
                            make_random_walk_trajectory(
                                400, n_features=N_FEATURES, seed=800 + i
                            ).frames,
                        )
                        sids.append(sid)
                    placement = {sid: service.shard_of(sid) for sid in sids}
                    victim_shard = placement[sids[0]]
                    victims = {
                        s for s, sh in placement.items() if sh == victim_shard
                    }
                    os.kill(
                        service._shards[victim_shard].process.pid, signal.SIGKILL
                    )
                    crash_events = []
                    async for event in frontend.events():
                        if event.error is not None:
                            crash_events.append(event)
                            if len(crash_events) == len(victims):
                                break
                    return victims, crash_events, set(service.failed_sessions)

        victims, crash_events, failed = asyncio.run(run())
        assert {e.session_id for e in crash_events} == victims
        assert all(e.flag and e.error for e in crash_events)
        assert failed == victims


def stats_with_p99(tick_ms: float, n_ticks: int = 100) -> ServiceStats:
    """ServiceStats whose every recorded tick took ``tick_ms``."""
    stats = ServiceStats(capacity=max(n_ticks, 1))
    for _ in range(n_ticks):
        stats.record(tick_ms, 4)
    return stats


class TestSuggestShardCount:
    """The pure autoscaling policy over shard_stats() snapshots.

    Budget at the paper's 30 Hz: 33.3 ms per frame; default watermarks
    are 50% (scale up above ~16.7 ms p99) and 10% (scale down below
    ~3.3 ms p99).
    """

    def test_in_band_load_keeps_current_count(self):
        stats = {i: stats_with_p99(8.0) for i in range(4)}
        assert suggest_shard_count(stats) == 4

    def test_hot_fleet_scales_up_proportionally(self):
        # Busiest shard at 2x the high watermark -> double the fleet.
        stats = {0: stats_with_p99(33.3), 1: stats_with_p99(10.0)}
        assert suggest_shard_count(stats) == 4

    def test_scale_up_driven_by_busiest_shard_only(self):
        # Hash skew: one hot shard forces growth even if others idle.
        stats = {i: stats_with_p99(0.5) for i in range(3)}
        stats[3] = stats_with_p99(50.0)
        assert suggest_shard_count(stats) > 4

    def test_cold_fleet_scales_down_with_hysteresis(self):
        # Far below the low watermark: consolidate, but the projected
        # busiest p99 must stay under half the high watermark.
        stats = {i: stats_with_p99(0.8) for i in range(8)}
        suggested = suggest_shard_count(stats)
        assert suggested < 8
        projected = 0.8 * 8 / suggested
        assert projected <= 0.5 * 0.5 * (1000.0 / 30.0)

    def test_idle_fleet_collapses_to_min_shards(self):
        stats = {i: ServiceStats(capacity=4) for i in range(6)}
        assert suggest_shard_count(stats) == 1
        assert suggest_shard_count(stats, min_shards=2) == 2

    def test_scale_down_never_triggers_next_scale_up(self):
        # Property: applying the suggestion to a cold fleet never lands
        # in the scale-up region under the linear-consolidation model.
        for p99 in (0.1, 0.5, 1.0, 2.0, 3.0):
            for k in (2, 4, 8, 16):
                stats = {i: stats_with_p99(p99) for i in range(k)}
                suggested = suggest_shard_count(stats)
                if suggested < k:
                    projected = {
                        i: stats_with_p99(p99 * k / suggested)
                        for i in range(suggested)
                    }
                    assert suggest_shard_count(projected) <= k

    def test_respects_max_shards_and_empty_input(self):
        hot = {0: stats_with_p99(200.0)}
        assert suggest_shard_count(hot, max_shards=3) == 3
        assert suggest_shard_count({}) == 1
        assert suggest_shard_count({}, min_shards=4) == 4

    def test_invalid_arguments_rejected(self):
        stats = {0: stats_with_p99(5.0)}
        with pytest.raises(ConfigurationError):
            suggest_shard_count(stats, low_watermark=0.6, high_watermark=0.5)
        with pytest.raises(ConfigurationError):
            suggest_shard_count(stats, frame_interval_ms=0.0)
        with pytest.raises(ConfigurationError):
            suggest_shard_count(stats, min_shards=0)
        with pytest.raises(ConfigurationError):
            suggest_shard_count(stats, min_shards=4, max_shards=2)

    def test_accepts_live_shard_stats(self, monitor):
        """The function consumes a real shard_stats() snapshot as-is."""
        with ShardedMonitorService(
            monitor, n_shards=2, max_sessions_per_shard=4
        ) as service:
            sid = service.open_session("proc")
            service.feed(
                sid,
                make_random_walk_trajectory(
                    20, n_features=N_FEATURES, seed=990
                ).frames,
            )
            service.drain(collect=False)
            suggested = suggest_shard_count(service.shard_stats())
            assert 1 <= suggested  # tiny synthetic load: any sane count


class TestAsyncShardStats:
    def test_shard_stats_coroutine_matches_sync_surface(self, monitor):
        """AsyncShardedMonitor.shard_stats polls each worker under its
        pipe lock and returns the same per-shard view."""

        async def run():
            with ShardedMonitorService(
                monitor, n_shards=2, max_sessions_per_shard=4
            ) as service:
                async with AsyncShardedMonitor(service) as frontend:
                    sid = await frontend.open_session("proc")
                    await frontend.feed(
                        sid,
                        make_random_walk_trajectory(
                            15, n_features=N_FEATURES, seed=991
                        ).frames,
                    )
                    await frontend.drain()
                    stats = await frontend.shard_stats()
                    return {
                        i: (s.n_ticks, s.frames_processed)
                        for i, s in stats.items()
                    }

        per_shard = asyncio.run(run())
        assert set(per_shard) == {0, 1}
        assert sum(frames for _, frames in per_shard.values()) == 15


class TestConstruction:
    def test_rejects_bad_arguments(self, monitor):
        with pytest.raises(ConfigurationError):
            ShardedMonitorService(monitor, n_shards=0)
        with pytest.raises(ConfigurationError):
            ShardedMonitorService(monitor, n_shards=1, max_sessions_per_shard=0)
        with pytest.raises(ConfigurationError):
            ShardedMonitorService()  # neither monitor nor bytes
        with pytest.raises(ConfigurationError):
            ShardedMonitorService(monitor, monitor_bytes=b"xx")  # both

    def test_bootstrap_from_snapshot_bytes(self, monitor):
        """A service built from a pre-serialised snapshot behaves like one
        built from the live monitor."""
        from repro.serving import monitor_to_bytes

        blob = monitor_to_bytes(monitor)
        trajectory = make_random_walk_trajectory(
            20, n_features=N_FEATURES, seed=900
        )
        with ShardedMonitorService(
            monitor_bytes=blob, n_shards=1, max_sessions_per_shard=2
        ) as service:
            session_id = service.open_session()
            service.feed(session_id, trajectory.frames)
            service.drain(collect=False)
            result = service.close_session(session_id)
        gestures = [g for _, g, _, _ in monitor.stream(trajectory)]
        assert np.array_equal(result.gestures, np.asarray(gestures))
