"""ASCII/markdown table rendering for the benchmark harness.

Every benchmark prints the rows of the paper table it regenerates; these
helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ShapeError


def _stringify(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}" if abs(cell) < 1000 else f"{cell:.1f}"
    return str(cell)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Fixed-width ASCII table."""
    if not headers:
        raise ShapeError("headers must not be empty")
    str_rows = [[_stringify(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ShapeError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
) -> str:
    """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
    if not headers:
        raise ShapeError("headers must not be empty")
    str_rows = [[_stringify(c) for c in row] for row in rows]
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in str_rows:
        if len(row) != len(headers):
            raise ShapeError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)
