"""Multi-stream online serving of the safety-monitoring pipeline.

The architectural seam between the paper's single-demonstration replay
and a production deployment monitoring many procedures at once:

- :mod:`~repro.serving.service` — :class:`MonitorService`, the tick-based
  engine that batches ready windows *across* concurrent sessions so each
  pipeline stage runs once per tick instead of once per stream;
- :mod:`~repro.serving.synthetic` — instant, deterministic synthetic
  monitors and trajectories for parity tests and throughput benchmarks.

:meth:`repro.core.SafetyMonitor.stream` is a thin one-session wrapper
over this engine, so single-stream and fleet serving share one hot path.
"""

from .service import MonitorService, ServiceStats, SessionEvent, SessionResult
from .synthetic import make_random_walk_trajectory, make_synthetic_monitor

__all__ = [
    "MonitorService",
    "ServiceStats",
    "SessionEvent",
    "SessionResult",
    "make_random_walk_trajectory",
    "make_synthetic_monitor",
]
