"""Per-demonstration timing evaluation (paper Figure 8 semantics).

Ties the monitor's frame-level outputs to the jitter / reaction-time /
early-detection metrics of :mod:`repro.eval.timing`, producing the
quantities reported in paper Tables VIII and IX.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import frames_to_ms
from ..errors import DatasetError
from ..eval.timing import early_detection_percentage, gesture_jitter, reaction_times
from ..kinematics.trajectory import Trajectory
from .pipeline import MonitorOutput


@dataclass
class TimingReport:
    """Aggregated timing metrics over a set of demonstrations.

    All frame-denominated aggregates are also exposed in milliseconds at
    the trajectories' frame rate.
    """

    frame_rate_hz: float
    #: (gesture, reaction_frames) per detected erroneous occurrence.
    reactions: list[tuple[int | None, float]] = field(default_factory=list)
    #: gesture -> jitter samples (frames), over all occurrences.
    jitter: dict[int, list[float]] = field(default_factory=dict)
    #: gesture -> jitter samples (frames), erroneous occurrences only.
    jitter_erroneous: dict[int, list[float]] = field(default_factory=dict)
    #: total / correctly-labeled frame counts per gesture (detection acc).
    gesture_frames: dict[int, int] = field(default_factory=dict)
    gesture_correct: dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def mean_reaction_frames(self, gesture: int | None = None) -> float:
        """Mean reaction time in frames (positive = early)."""
        values = [
            r for g, r in self.reactions if gesture is None or g == gesture
        ]
        return float(np.mean(values)) if values else float("nan")

    def mean_reaction_ms(self, gesture: int | None = None) -> float:
        """Mean reaction time in milliseconds."""
        return frames_to_ms(self.mean_reaction_frames(gesture), self.frame_rate_hz)

    def std_reaction_ms(self) -> float:
        """Standard deviation of reaction times in milliseconds."""
        values = [r for _, r in self.reactions]
        if not values:
            return float("nan")
        return frames_to_ms(float(np.std(values)), self.frame_rate_hz)

    def early_detection_pct(self) -> float:
        """Percentage of erroneous occurrences detected early."""
        return early_detection_percentage(self.reactions)

    def mean_jitter_ms(self, gesture: int, erroneous_only: bool = False) -> float:
        """Mean gesture-detection jitter in milliseconds."""
        source = self.jitter_erroneous if erroneous_only else self.jitter
        values = source.get(gesture, [])
        if not values:
            return float("nan")
        return frames_to_ms(float(np.mean(values)), self.frame_rate_hz)

    def gesture_accuracy(self, gesture: int) -> float:
        """Frame-level detection accuracy of one gesture class."""
        total = self.gesture_frames.get(gesture, 0)
        if not total:
            return float("nan")
        return self.gesture_correct.get(gesture, 0) / total


def evaluate_timing(
    pairs: list[tuple[Trajectory, MonitorOutput]],
) -> TimingReport:
    """Compute the paper's timing metrics over monitored demonstrations.

    Parameters
    ----------
    pairs:
        ``(annotated_trajectory, monitor_output)`` pairs; trajectories
        need gesture and unsafe labels.
    """
    if not pairs:
        raise DatasetError("at least one (trajectory, output) pair is required")
    report = TimingReport(frame_rate_hz=pairs[0][0].frame_rate_hz)
    for trajectory, output in pairs:
        if trajectory.gestures is None or trajectory.unsafe is None:
            raise DatasetError("timing evaluation needs gesture + unsafe labels")
        report.reactions.extend(
            reaction_times(
                trajectory.unsafe, output.unsafe_flags, trajectory.gestures
            )
        )
        for gesture, samples in gesture_jitter(
            trajectory.gestures, output.gestures
        ).items():
            report.jitter.setdefault(gesture, []).extend(samples)
        for gesture, samples in gesture_jitter(
            trajectory.gestures,
            output.gestures,
            restrict_to=trajectory.unsafe.astype(bool),
        ).items():
            report.jitter_erroneous.setdefault(gesture, []).extend(samples)
        for gesture in np.unique(trajectory.gestures):
            mask = trajectory.gestures == gesture
            report.gesture_frames[int(gesture)] = report.gesture_frames.get(
                int(gesture), 0
            ) + int(mask.sum())
            report.gesture_correct[int(gesture)] = report.gesture_correct.get(
                int(gesture), 0
            ) + int((output.gestures[mask] == gesture).sum())
    return report
