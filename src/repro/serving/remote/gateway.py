"""The network front door: an asyncio TCP gateway over the serving stack.

:class:`MonitorGateway` accepts client connections speaking the
length-prefixed binary protocol (:mod:`~repro.serving.remote.protocol`)
and routes their sessions into an embedded serving engine — a single
in-process :class:`~repro.serving.service.MonitorService` for
``n_shards=1``, or a :class:`~repro.serving.sharded.ShardedMonitorService`
behind an :class:`~repro.serving.async_frontend.AsyncShardedMonitor` for
a multi-worker fleet.  Either way a session fed over the wire reproduces
the local engine's :class:`SessionEvent` stream bit for bit, frame order
included (``tests/serving/test_remote.py`` locks this in for K ∈ {1, 2}
under both inference backends).

Flow control and failure semantics:

- **Backpressure** — every connection owns a bounded send queue drained
  by one writer task (which coalesces queued messages into single
  socket writes).  A consumer that stops reading fills the TCP window,
  then the queue; on overflow the gateway disconnects that client (one
  slow dashboard must never stall the monitoring of every theatre) and
  fails its sessions safe.  Ingest-side backpressure is TCP itself:
  clients feeding faster than the engine drains block in
  ``writer.drain()`` / ``socket.sendall``.
- **Heartbeats and idle timeouts** — the gateway pings every
  ``heartbeat_interval_s``; clients echo (both SDKs do automatically).
  A connection silent past ``idle_timeout_s`` is treated as dead.
- **Fail-safe disconnects** — when a client vanishes (EOF, reset, idle
  timeout, queue overflow), its sessions are *drained* (already-fed
  frames are processed, never dropped) and closed, and one terminal
  :class:`SessionEvent` per session with ``error`` set and ``flag=True``
  is recorded at the gateway (:attr:`MonitorGateway.failsafe_events`,
  :attr:`MonitorGateway.failed_sessions`) — the PR 2 contract: a lost
  monitor reads as unsafe, never as silently safe.  A shard worker
  crash surfaces the same way *and* is pushed to the owning client as
  an EVENT with ``error`` set.

``gateway_stats()`` aggregates the engine's per-shard
:meth:`shard_stats` with connection/session/queue-depth counters; the
STATS wire message returns it to any client.  See ``docs/remote.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import itertools
import threading
from collections.abc import AsyncIterator

from ...errors import ConfigurationError, ProtocolError, ReproError, WorkerError
from ...nn.backends import DEFAULT_BACKEND, validate_backend_name
from ..async_frontend import AsyncShardedMonitor
from ..autoscaler import MonitorAutoscaler
from ..service import MonitorService, ServiceStats, SessionEvent
from ..sharded import ShardedMonitorService
from ..snapshot import monitor_from_bytes, snapshot_backend
from .protocol import (
    HEADER_SIZE,
    PROTOCOL_VERSION,
    MessageType,
    decode_frames,
    decode_header,
    decode_json,
    encode_events,
    encode_json,
    encode_message,
)

#: Sentinel ending an engine's event stream / a connection's writer task.
_CLOSED = object()

#: Messages a writer task coalesces into one socket write at most.
_WRITE_BATCH = 64


class _LocalEngine:
    """Async serving engine over one in-process :class:`MonitorService`.

    The K=1 topology: no worker processes, no pipes — one background
    ticker task advances the service whenever frames are pending (tick
    compute runs on the executor so the event loop keeps accepting
    ingest), mirroring the surface of :class:`AsyncShardedMonitor` that
    the gateway routes through.
    """

    def __init__(
        self, service: MonitorService, poll_interval_s: float = 0.2
    ) -> None:
        self.service = service
        self.poll_interval_s = poll_interval_s
        self._queue: asyncio.Queue = asyncio.Queue()
        self._lock = asyncio.Lock()
        self._kick = asyncio.Event()
        self._task: asyncio.Task | None = None
        self._closed = False
        self._failure: str | None = None

    async def start(self) -> None:
        self._task = asyncio.create_task(
            self._tick_loop(), name="gateway-local-ticker"
        )

    async def _call(self, fn, *args):
        async with self._lock:
            return await asyncio.get_running_loop().run_in_executor(
                None, fn, *args
            )

    async def _tick_loop(self) -> None:
        try:
            while not self._closed:
                self._kick.clear()
                # Read the backlog state under the same lock the executor
                # calls mutate the session registry under — an unlocked
                # has_pending would iterate the dict mid-open/close.
                async with self._lock:
                    pending = self.service.has_pending
                if not pending:
                    # Timeout is the idle-poll path, not an error.
                    with contextlib.suppress(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            self._kick.wait(), timeout=self.poll_interval_s
                        )
                    continue
                events = await self._call(self.service.tick)
                for event in events:
                    self._queue.put_nowait(event)
                # Let ingest and the event pump run between busy ticks.
                await asyncio.sleep(0)
        except Exception as exc:  # noqa: BLE001 - a dead ticker must fail safe
            # The sharded path converts a broken worker into fail-safe
            # crash events; the embedded engine owes its sessions the
            # same — a monitor that silently stops flagging is the one
            # outcome the serving contract forbids.
            self._failure = (
                f"local engine tick failed: {type(exc).__name__}: {exc}"
            )
            async with self._lock:
                for session_id in self.service.session_ids:
                    self._queue.put_nowait(
                        SessionEvent(
                            session_id=session_id,
                            frame_index=self.service.frames_done(session_id),
                            gesture=0,
                            score=0.0,
                            flag=True,
                            error=self._failure,
                        )
                    )

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise WorkerError(self._failure)

    async def open_session(self, session_id: str | None, record_timeline: bool) -> str:
        self._check_failure()
        return await self._call(
            self.service.open_session, session_id, record_timeline
        )

    async def feed(self, session_id: str, frames) -> None:
        self._check_failure()
        await self._call(self.service.feed, session_id, frames)
        self._kick.set()

    async def close_session(self, session_id: str):
        self._check_failure()
        return await self._call(self.service.close_session, session_id)

    async def events(self) -> AsyncIterator[SessionEvent]:
        while True:
            event = await self._queue.get()
            if event is _CLOSED:
                return
            yield event

    async def shard_stats(self) -> dict[int, ServiceStats]:
        return {0: self.service.stats}

    async def resize(self, target_k: int) -> dict:
        raise ConfigurationError(
            "the embedded single-service engine cannot resize; start the "
            "gateway with n_shards >= 2 for an elastic fleet"
        )

    async def aclose(self) -> None:
        self._closed = True
        self._kick.set()
        if self._task is not None:
            await self._task
        self._queue.put_nowait(_CLOSED)

    def shutdown_blocking(self) -> None:
        """Nothing to terminate: the engine lives in this process."""


class _ShardedEngine:
    """Async serving engine over a sharded fleet (K >= 2 topology)."""

    def __init__(
        self, service: ShardedMonitorService, frontend: AsyncShardedMonitor
    ) -> None:
        self.service = service
        self.frontend = frontend

    async def start(self) -> None:
        await self.frontend.start()

    async def open_session(self, session_id: str | None, record_timeline: bool) -> str:
        return await self.frontend.open_session(session_id, record_timeline)

    async def feed(self, session_id: str, frames) -> None:
        await self.frontend.feed(session_id, frames)

    async def close_session(self, session_id: str):
        return await self.frontend.close_session(session_id)

    def events(self) -> AsyncIterator[SessionEvent]:
        return self.frontend.events()

    async def shard_stats(self) -> dict[int, ServiceStats]:
        return await self.frontend.shard_stats()

    async def resize(self, target_k: int) -> dict:
        return await self.frontend.resize(target_k)

    async def aclose(self) -> None:
        await self.frontend.aclose()

    def shutdown_blocking(self) -> None:
        """Terminate the fleet's worker processes (no orphans)."""
        self.service.close()


class _RemoteSession:
    """Gateway-side bookkeeping for one wire-opened session."""

    __slots__ = ("conn", "fed", "delivered", "flagged")

    def __init__(self, conn: "_Connection") -> None:
        self.conn = conn
        self.fed = 0  # frames accepted off the wire
        self.delivered = 0  # events routed back (== frames processed)
        self.flagged = 0  # events with flag=True


class _Connection:
    """One accepted client connection and its tasks/queues."""

    def __init__(
        self,
        conn_id: int,
        writer: asyncio.StreamWriter,
        send_queue_max: int,
    ) -> None:
        self.id = conn_id
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=send_queue_max)
        self.sessions: set[str] = set()
        self.last_recv = 0.0
        self.closed = False  # no further routing to this connection
        self.torn_down = False  # teardown ran (idempotence guard)
        self.heartbeat_task: asyncio.Task | None = None
        self.writer_task: asyncio.Task | None = None
        #: Test hook: clearing this parks the writer task, letting the
        #: backpressure suite fill the send queue deterministically.
        self.writer_gate = asyncio.Event()
        self.writer_gate.set()

    def enqueue(self, data: bytes) -> bool:
        """Queue bytes for the writer task; False on overflow."""
        if self.closed:
            return True  # silently dropped; teardown is in flight
        try:
            self.queue.put_nowait(data)
        except asyncio.QueueFull:
            return False
        return True


class MonitorGateway:
    """Serve the safety monitor to remote clients over TCP.

    Parameters
    ----------
    monitor / monitor_bytes:
        Exactly one of a live trained :class:`SafetyMonitor` or a
        :func:`~repro.serving.snapshot.monitor_to_bytes` archive.
    n_shards:
        ``1`` embeds a single in-process :class:`MonitorService`;
        ``>= 2`` spawns a :class:`ShardedMonitorService` fleet behind an
        :class:`AsyncShardedMonitor`.
    max_sessions:
        Slot capacity of the engine — total for ``n_shards=1``, per
        shard otherwise (consistent hashing needs headroom, see
        ``docs/serving.md``).
    backend:
        Inference backend for the engine; ``None`` resolves to the
        choice embedded in ``monitor_bytes`` (via
        :func:`~repro.serving.snapshot.snapshot_backend`), falling back
        to ``"reference"`` — the same resolution the sharded service
        applies, so a snapshot's backend choice survives any number of
        gateway restarts.
    host / port:
        Bind address; port ``0`` picks a free port (read
        :attr:`port` after :meth:`start`).
    send_queue_max:
        Per-connection bounded send queue (messages).  Overflow — a
        consumer that stopped reading — disconnects that client.
    heartbeat_interval_s / idle_timeout_s:
        Gateway→client ping cadence, and how long a connection may stay
        silent before it is declared dead (fail-safe close).
    drain_timeout_s:
        How long a disconnect/close waits for a session's already-fed
        frames to finish processing before closing it anyway.
    data_plane:
        Data plane of the sharded engine (``n_shards >= 2`` only):
        ``"shm"`` (default) streams frames and events through per-shard
        shared-memory rings, ``"pipe"`` forces the ack-per-feed pipe
        plane (see :class:`ShardedMonitorService`).
    autoscale_interval_s / autoscale_max_shards:
        When ``autoscale_interval_s`` is set (requires ``n_shards >=
        2``), the gateway runs a
        :class:`~repro.serving.autoscaler.MonitorAutoscaler` over its
        fleet at that cadence, live-resizing within ``[1,
        autoscale_max_shards]``.  Every applied (or manual
        :meth:`resize`) resize is recorded and visible to STATS clients
        — socket sessions ride through resizes transparently, their
        frames migrating with them.

    Lifecycle: ``await start()`` → serve → ``await stop()`` (or use as
    an async context manager).  :meth:`serve_in_thread` bridges the
    gateway into synchronous programs via :class:`GatewayRunner`.
    """

    def __init__(
        self,
        monitor=None,
        *,
        monitor_bytes: bytes | None = None,
        n_shards: int = 1,
        max_sessions: int = 64,
        backend: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        send_queue_max: int = 1024,
        heartbeat_interval_s: float = 10.0,
        idle_timeout_s: float = 60.0,
        drain_timeout_s: float = 10.0,
        start_method: str | None = None,
        data_plane: str = "shm",
        autoscale_interval_s: float | None = None,
        autoscale_max_shards: int = 8,
    ) -> None:
        if (monitor is None) == (monitor_bytes is None):
            raise ConfigurationError("pass exactly one of monitor / monitor_bytes")
        if n_shards < 1:
            raise ConfigurationError("n_shards must be >= 1")
        if max_sessions < 1:
            raise ConfigurationError("max_sessions must be >= 1")
        if send_queue_max < 2:
            raise ConfigurationError("send_queue_max must be >= 2")
        if heartbeat_interval_s <= 0 or drain_timeout_s <= 0:
            raise ConfigurationError("intervals/timeouts must be > 0")
        if idle_timeout_s is not None and idle_timeout_s <= heartbeat_interval_s:
            # A consumer-only client's sole traffic is echoing our
            # pings; a tighter idle bound would disconnect every
            # healthy-but-quiet connection.
            raise ConfigurationError(
                "idle_timeout_s must exceed heartbeat_interval_s (or be None)"
            )
        if backend is not None:
            backend = validate_backend_name(backend)
        if monitor_bytes is None:
            self.backend = backend or DEFAULT_BACKEND
        else:
            self.backend = validate_backend_name(
                backend or snapshot_backend(monitor_bytes) or DEFAULT_BACKEND
            )
        self._monitor = monitor
        self._monitor_bytes = monitor_bytes
        self.n_shards = int(n_shards)
        self.max_sessions = int(max_sessions)
        self.host = host
        self.port = int(port)  # rebound to the real port by start()
        self.send_queue_max = int(send_queue_max)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.idle_timeout_s = idle_timeout_s
        self.drain_timeout_s = drain_timeout_s
        self._start_method = start_method
        self.data_plane = data_plane
        if autoscale_interval_s is not None:
            if autoscale_interval_s <= 0:
                raise ConfigurationError("autoscale_interval_s must be > 0")
            if n_shards < 2:
                raise ConfigurationError(
                    "autoscaling requires a sharded fleet (n_shards >= 2)"
                )
        self.autoscale_interval_s = autoscale_interval_s
        self.autoscale_max_shards = int(autoscale_max_shards)
        self._autoscaler: MonitorAutoscaler | None = None
        #: Applied resizes (manual and autoscaler), oldest first —
        #: summary dicts surfaced to STATS clients by gateway_stats().
        self.resize_events: list[dict] = []

        self._engine = None
        self._server: asyncio.Server | None = None
        self._pump_task: asyncio.Task | None = None
        #: Strong references to fire-and-forget teardown tasks (the
        #: event loop only keeps weak ones; a GC'd teardown would leak
        #: the connection and skip its sessions' fail-safe closure).
        self._bg_tasks: set[asyncio.Task] = set()
        self._connections: dict[int, _Connection] = {}
        self._conn_ids = itertools.count()
        self._sessions: dict[str, _RemoteSession] = {}
        self._started = False
        self._stopped = False

        #: Terminal fail-safe events recorded at the gateway: client
        #: disconnects, idle timeouts, queue overflows, shard crashes,
        #: shutdown with live sessions.  ``error`` set, ``flag=True``.
        self.failsafe_events: list[SessionEvent] = []
        #: Session id -> reason, for every session that ended fail-safe.
        self.failed_sessions: dict[str, str] = {}

        # Lifetime counters surfaced by gateway_stats().
        self._connections_total = 0
        self._sessions_opened = 0
        self._sessions_closed = 0
        self._frames_received = 0
        self._events_sent = 0
        self._events_dropped = 0
        self._heartbeats_sent = 0
        self._overflow_disconnects = 0
        self._idle_disconnects = 0
        self._peak_open_sessions = 0
        self._peak_queue_depth = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Build the engine, bind the socket; returns ``(host, port)``."""
        if self._started:
            raise ConfigurationError("gateway is already started")
        self._started = True
        loop = asyncio.get_running_loop()
        self._engine = await loop.run_in_executor(None, self._build_engine)
        try:
            await self._engine.start()
            if self.autoscale_interval_s is not None and isinstance(
                self._engine, _ShardedEngine
            ):
                self._autoscaler = MonitorAutoscaler(
                    self._engine.frontend,
                    interval_s=self.autoscale_interval_s,
                    max_shards=self.autoscale_max_shards,
                    on_resize=self._note_resize,
                )
                await self._autoscaler.start()
            self._pump_task = asyncio.create_task(
                self._event_pump(), name="gateway-event-pump"
            )
            self._server = await asyncio.start_server(
                self._serve_connection, self.host, self.port
            )
        except BaseException:
            # A failed bind (port in use, ...) must not orphan a fleet
            # of already-spawned shard workers.
            await self._shutdown_engine()
            raise
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def _shutdown_engine(self) -> None:
        """End the engine's tasks and terminate any worker processes."""
        if self._autoscaler is not None:
            await self._autoscaler.stop()
            self._autoscaler = None
        if self._engine is None:
            return
        await self._engine.aclose()
        if self._pump_task is not None:
            await self._pump_task
        await asyncio.get_running_loop().run_in_executor(
            None, self._engine.shutdown_blocking
        )

    def _build_engine(self):
        """Blocking engine construction (model compile / worker spawn)."""
        if self.n_shards == 1:
            monitor = self._monitor
            if monitor is None:
                monitor = monitor_from_bytes(self._monitor_bytes)
            service = MonitorService(
                monitor, max_sessions=self.max_sessions, backend=self.backend
            )
            return _LocalEngine(service)
        service = ShardedMonitorService(
            self._monitor,
            n_shards=self.n_shards,
            max_sessions_per_shard=self.max_sessions,
            monitor_bytes=self._monitor_bytes,
            backend=self.backend,
            start_method=self._start_method,
            data_plane=self.data_plane,
        )
        return _ShardedEngine(service, AsyncShardedMonitor(service))

    async def stop(self) -> None:
        """Stop accepting, fail-safe every live connection, drain the
        engine's tasks and terminate any worker processes.  Idempotent."""
        if self._stopped or not self._started:
            self._stopped = True
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            await self._teardown(conn, "gateway shutting down")
        if self._bg_tasks:  # overflow teardowns still in flight
            await asyncio.gather(*list(self._bg_tasks), return_exceptions=True)
        await self._shutdown_engine()

    async def __aenter__(self) -> "MonitorGateway":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    def serve_in_thread(self) -> "GatewayRunner":
        """Run this gateway on a dedicated event-loop thread (sync bridge)."""
        return GatewayRunner(self)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(next(self._conn_ids), writer, self.send_queue_max)
        conn.last_recv = asyncio.get_running_loop().time()
        self._connections[conn.id] = conn
        self._connections_total += 1
        conn.writer_task = asyncio.create_task(
            self._writer_loop(conn), name=f"gateway-writer-{conn.id}"
        )
        conn.heartbeat_task = asyncio.create_task(
            self._heartbeat_loop(conn), name=f"gateway-heartbeat-{conn.id}"
        )
        reason = "client disconnected"
        try:
            while not conn.closed:
                header = await reader.readexactly(HEADER_SIZE)
                msg_type, length = decode_header(header)
                payload = await reader.readexactly(length) if length else b""
                conn.last_recv = asyncio.get_running_loop().time()
                await self._dispatch(conn, msg_type, payload)
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            # EOF or reset: the fail-safe teardown below handles it, and
            # the close reason records what actually ended the stream.
            reason = f"client disconnected ({type(exc).__name__})"
        except ProtocolError as exc:
            reason = f"protocol violation: {exc}"
            self._send_error(conn, ProtocolError(str(exc)), None)
        except asyncio.CancelledError:  # pragma: no cover - loop shutdown
            raise
        finally:
            await self._teardown(conn, reason)

    async def _dispatch(
        self, conn: _Connection, msg_type: MessageType, payload: bytes
    ) -> None:
        if msg_type is MessageType.HEARTBEAT:
            return  # liveness only; last_recv is already refreshed
        if msg_type is MessageType.FRAME:
            await self._handle_frames(conn, payload)
            return
        if msg_type is MessageType.OPEN:
            await self._handle_open(conn, payload)
            return
        if msg_type is MessageType.CLOSE:
            await self._handle_close(conn, payload)
            return
        if msg_type is MessageType.STATS:
            stats = await self.gateway_stats()
            self._enqueue_or_overflow(
                conn, encode_message(MessageType.STATS, encode_json(stats))
            )
            return
        raise ProtocolError(f"unexpected client message type {msg_type.name}")

    async def _handle_open(self, conn: _Connection, payload: bytes) -> None:
        request = decode_json(payload)
        session_id = request.get("session_id")
        if session_id is not None and not isinstance(session_id, str):
            raise ProtocolError("OPEN session_id must be a string or null")
        record_timeline = bool(request.get("record_timeline", False))
        try:
            session_id = await self._engine.open_session(
                session_id, record_timeline
            )
        except ReproError as exc:
            self._send_error(conn, exc, session_id, MessageType.OPEN)
            return
        if conn.torn_down or conn.closed:
            # The connection died while the open was in flight; release
            # the engine slot instead of registering a zombie session
            # that no teardown will ever drain or fail safe.
            with contextlib.suppress(ReproError):
                await self._engine.close_session(session_id)
            return
        self._sessions[session_id] = _RemoteSession(conn)
        conn.sessions.add(session_id)
        self._sessions_opened += 1
        self._peak_open_sessions = max(
            self._peak_open_sessions, len(self._sessions)
        )
        self._enqueue_or_overflow(
            conn,
            encode_message(
                MessageType.OPEN, encode_json({"session_id": session_id})
            ),
        )

    async def _handle_frames(self, conn: _Connection, payload: bytes) -> None:
        session_id, frames = decode_frames(payload)
        session = self._sessions.get(session_id)
        if session is None or session.conn is not conn:
            reason = self.failed_sessions.get(session_id)
            error = (
                WorkerError(f"session {session_id!r} failed: {reason}")
                if reason is not None and session is None
                else ProtocolError(
                    f"no session {session_id!r} open on this connection"
                )
            )
            self._send_error(conn, error, session_id)
            return
        try:
            await self._engine.feed(session_id, frames)
        except ReproError as exc:
            self._send_error(conn, exc, session_id)
            return
        session.fed += frames.shape[0]
        self._frames_received += frames.shape[0]

    async def _handle_close(self, conn: _Connection, payload: bytes) -> None:
        request = decode_json(payload)
        session_id = request.get("session_id")
        if not isinstance(session_id, str):
            raise ProtocolError("CLOSE session_id must be a string")
        session = self._sessions.get(session_id)
        if session is None or session.conn is not conn:
            reason = self.failed_sessions.get(session_id)
            error = (
                WorkerError(f"session {session_id!r} failed: {reason}")
                if reason is not None and session is None
                else ProtocolError(
                    f"no session {session_id!r} open on this connection"
                )
            )
            self._send_error(conn, error, session_id, MessageType.CLOSE)
            return
        await self._drain_session(session_id)
        try:
            await self._engine.close_session(session_id)
        except ReproError as exc:
            # A crash event for this session is (or will be) routed by
            # the pump; the close itself reports the failure.
            self._send_error(conn, exc, session_id, MessageType.CLOSE)
            return
        summary = {
            "session_id": session_id,
            "n_frames": session.delivered,
            "n_flagged": session.flagged,
        }
        self._unregister(session_id)
        self._sessions_closed += 1
        self._enqueue_or_overflow(
            conn, encode_message(MessageType.CLOSE, encode_json(summary))
        )

    async def _drain_session(self, session_id: str) -> None:
        """Park until every accepted frame of a session has produced its
        event (bounded by ``drain_timeout_s``) — the *drain* half of the
        drain-and-close disconnect contract."""
        session = self._sessions.get(session_id)
        if session is None:
            return
        deadline = asyncio.get_running_loop().time() + self.drain_timeout_s
        while (
            session.delivered < session.fed
            and self._sessions.get(session_id) is session
            and asyncio.get_running_loop().time() < deadline
        ):
            await asyncio.sleep(0.002)

    async def _teardown(self, conn: _Connection, reason: str) -> None:
        """Disconnect a client: drain-and-close its sessions fail-safe."""
        if conn.torn_down:
            return
        conn.torn_down = True
        conn.closed = True  # stop routing/replies to this connection now
        for session_id in list(conn.sessions):
            await self._drain_session(session_id)
            session = self._sessions.get(session_id)
            if session is None or session.conn is not conn:
                continue  # already ended (e.g. shard crash event)
            # Engine-side loss; the fail-safe event below stands.
            with contextlib.suppress(ReproError):
                await self._engine.close_session(session_id)
            self._record_failsafe(
                SessionEvent(
                    session_id=session_id,
                    frame_index=session.delivered,
                    gesture=0,
                    score=0.0,
                    flag=True,
                    error=reason,
                )
            )
            self._unregister(session_id)
        conn.sessions.clear()
        self._connections.pop(conn.id, None)
        if (
            conn.heartbeat_task is not None
            and conn.heartbeat_task is not asyncio.current_task()
        ):
            conn.heartbeat_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await conn.heartbeat_task
        if conn.writer_task is not None:
            conn.writer_gate.set()
            try:
                conn.queue.put_nowait(_CLOSED)
            except asyncio.QueueFull:
                conn.writer_task.cancel()  # queue wedged; no orderly flush
            # A cancelled writer (queue wedged above) completing here is
            # the expected outcome, not an error.
            with contextlib.suppress(asyncio.CancelledError):
                try:
                    # A writer wedged in drain() against a non-reading
                    # peer must not wedge the teardown with it.
                    await asyncio.wait_for(
                        asyncio.shield(conn.writer_task), 5.0
                    )
                except asyncio.TimeoutError:
                    conn.writer_task.cancel()
            if not conn.writer_task.done():
                with contextlib.suppress(asyncio.CancelledError):
                    await conn.writer_task
        conn.writer.close()

    # ------------------------------------------------------------------
    # Per-connection tasks
    # ------------------------------------------------------------------
    async def _writer_loop(self, conn: _Connection) -> None:
        """Drain the send queue, coalescing bursts into single writes."""
        try:
            while True:
                chunk = await conn.queue.get()
                if chunk is _CLOSED:
                    return
                await conn.writer_gate.wait()
                parts = [chunk]
                while len(parts) < _WRITE_BATCH:
                    try:
                        extra = conn.queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if extra is _CLOSED:
                        conn.queue.put_nowait(_CLOSED)
                        break
                    parts.append(extra)
                conn.writer.write(b"".join(parts))
                await conn.writer.drain()
        except (ConnectionError, OSError):
            return  # peer is gone; the read loop's teardown handles it
        except asyncio.CancelledError:  # pragma: no cover - loop shutdown
            raise

    async def _heartbeat_loop(self, conn: _Connection) -> None:
        """Ping the client; declare it dead past the idle timeout."""
        loop = asyncio.get_running_loop()
        try:
            while not conn.closed:
                await asyncio.sleep(self.heartbeat_interval_s)
                if conn.closed:
                    return
                if (
                    self.idle_timeout_s is not None
                    and loop.time() - conn.last_recv > self.idle_timeout_s
                ):
                    self._idle_disconnects += 1
                    self._send_error(
                        conn,
                        WorkerError(
                            f"idle timeout: no traffic for "
                            f"{self.idle_timeout_s}s"
                        ),
                        None,
                    )
                    await self._teardown(conn, "idle timeout")
                    return
                self._enqueue_or_overflow(
                    conn, encode_message(MessageType.HEARTBEAT)
                )
                self._heartbeats_sent += 1
        except asyncio.CancelledError:
            return

    # ------------------------------------------------------------------
    # Event routing
    # ------------------------------------------------------------------
    async def _event_pump(self) -> None:
        """Route the engine's merged event stream to owning connections."""
        async for event in self._engine.events():
            self._route_event(event)

    def _route_event(self, event: SessionEvent) -> None:
        session = self._sessions.get(event.session_id)
        if session is None:
            self._events_dropped += 1
            return
        session.delivered += 1
        if event.flag:
            session.flagged += 1
        conn = session.conn
        if not conn.closed:
            self._enqueue_or_overflow(
                conn, encode_message(MessageType.EVENT, encode_events([event]))
            )
            self._events_sent += 1
        if event.error is not None:
            # Terminal: the engine lost this session (worker crash).
            # Surface it at the gateway too, not only on the wire.
            self._record_failsafe(event)
            self._unregister(event.session_id)

    def _enqueue_or_overflow(self, conn: _Connection, data: bytes) -> None:
        self._peak_queue_depth = max(self._peak_queue_depth, conn.queue.qsize())
        if not conn.enqueue(data):
            self._overflow_disconnects += 1
            conn.closed = True  # stop routing immediately
            task = asyncio.get_running_loop().create_task(
                self._teardown(
                    conn, "send queue overflow (client not reading events)"
                )
            )
            self._bg_tasks.add(task)
            task.add_done_callback(self._bg_tasks.discard)

    def _send_error(
        self,
        conn: _Connection,
        exc: Exception,
        session_id: str | None,
        in_reply_to: MessageType | None = None,
    ) -> None:
        """Report a failure to the client.

        ``in_reply_to`` names the control request this error answers
        (OPEN/CLOSE), letting clients tell a failed request apart from
        an *asynchronous* error (a rejected unacked FRAME, an idle
        timeout) that arrives while some other reply is pending.
        """
        self._enqueue_or_overflow(
            conn,
            encode_message(
                MessageType.ERROR,
                encode_json(
                    {
                        "error_type": type(exc).__name__,
                        "error": str(exc),
                        "session_id": session_id,
                        "in_reply_to": (
                            in_reply_to.name if in_reply_to is not None else None
                        ),
                    }
                ),
            ),
        )

    def _record_failsafe(self, event: SessionEvent) -> None:
        self.failsafe_events.append(event)
        self.failed_sessions[event.session_id] = event.error or "unknown"

    def _unregister(self, session_id: str) -> None:
        session = self._sessions.pop(session_id, None)
        if session is not None:
            session.conn.sessions.discard(session_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_open_sessions(self) -> int:
        """Number of wire-opened sessions currently live."""
        return len(self._sessions)

    async def resize(self, target_k: int) -> dict:
        """Live-resize the serving fleet to ``target_k`` shards.

        Open socket sessions ride through: their state — pending frames
        included — migrates between workers, no event is lost and no
        fail-safe closure occurs.  The resize is recorded in
        :attr:`resize_events` and visible to every STATS client.  Only
        available on a sharded gateway (``n_shards >= 2`` at
        construction); the embedded single-service engine raises
        :class:`~repro.errors.ConfigurationError`.
        """
        if self._engine is None:
            raise ConfigurationError("gateway is not started")
        summary = await self._engine.resize(target_k)
        self._note_resize(dict(summary, trigger="manual"))
        return summary

    def _note_resize(self, event: dict) -> None:
        """Record an applied resize (manual or autoscaler-triggered)."""
        self.resize_events.append(event)
        self.n_shards = int(event.get("to", self.n_shards))

    async def shard_stats(self) -> dict[int, ServiceStats]:
        """The embedded engine's per-shard :class:`ServiceStats`.

        Raw objects (retained tick-latency samples included), polled
        without disturbing the engine's pipe protocol — feed the dict to
        :func:`~repro.serving.sharded.suggest_shard_count` or merge the
        samples for fleet-wide percentiles.  ``gateway_stats()`` carries
        the JSON-friendly reduction of the same data.
        """
        if self._engine is None:
            return {}
        return await self._engine.shard_stats()

    async def gateway_stats(self) -> dict:
        """Aggregate serving and transport statistics (JSON-serialisable).

        Folds the engine's per-shard :class:`ServiceStats` (tick/frame
        counters, tick-latency percentiles) together with the gateway's
        own connection, session, queue-depth and fail-safe counters —
        also what the STATS wire message returns, and the input half of
        :func:`~repro.serving.sharded.suggest_shard_count` (pass the
        engine's ``shard_stats()``).
        """
        shard_stats = await self._engine.shard_stats() if self._engine else {}
        depths = [c.queue.qsize() for c in self._connections.values()]
        return {
            "protocol_version": PROTOCOL_VERSION,
            "n_shards": self.n_shards,
            "backend": self.backend,
            # Resize history (manual and autoscaler): how clients learn
            # the fleet changed shape underneath their sessions — and
            # that nothing happened to those sessions.
            "resizes": {
                "count": len(self.resize_events),
                "autoscaling": self.autoscale_interval_s is not None,
                "events": self.resize_events[-16:],
            },
            "connections": {
                "open": len(self._connections),
                "total": self._connections_total,
                "overflow_disconnects": self._overflow_disconnects,
                "idle_disconnects": self._idle_disconnects,
            },
            "sessions": {
                "open": len(self._sessions),
                "peak_open": self._peak_open_sessions,
                "opened_total": self._sessions_opened,
                "closed_total": self._sessions_closed,
                "failed_total": len(self.failed_sessions),
            },
            "queues": {
                "capacity": self.send_queue_max,
                "depths": depths,
                "max_depth": max(depths, default=0),
                "peak_depth": self._peak_queue_depth,
            },
            "frames_received": self._frames_received,
            "events_sent": self._events_sent,
            "events_dropped": self._events_dropped,
            "heartbeats_sent": self._heartbeats_sent,
            "shards": {
                str(index): {
                    "n_ticks": stats.n_ticks,
                    "frames_processed": stats.frames_processed,
                    "tick_p50_ms": stats.percentile_ms(50),
                    "tick_p99_ms": stats.percentile_ms(99),
                }
                for index, stats in shard_stats.items()
            },
        }


class GatewayRunner:
    """Run a :class:`MonitorGateway` on a dedicated event-loop thread.

    The bridge for synchronous programs (the sync client SDK, pytest,
    ``examples/remote_clients.py``): the gateway's asyncio machinery
    lives on a daemon thread; the caller gets ``(host, port)`` plus
    :meth:`run` to submit coroutines (e.g. ``gateway.gateway_stats()``)
    from sync code.  Use as a context manager — exit stops the gateway
    (terminating any shard workers) and joins the loop thread.
    """

    def __init__(self, gateway: MonitorGateway, startup_timeout_s: float = 120.0):
        self.gateway = gateway
        self._startup_timeout_s = startup_timeout_s
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.host: str | None = None
        self.port: int | None = None

    def start(self) -> tuple[str, int]:
        """Start the loop thread and the gateway; returns ``(host, port)``."""
        if self._thread is not None:
            raise ConfigurationError("runner is already started")
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="gateway-loop", daemon=True
        )
        self._thread.start()
        start_future = asyncio.run_coroutine_threadsafe(
            self.gateway.start(), self._loop
        )
        try:
            self.host, self.port = start_future.result(
                self._startup_timeout_s
            )
        except BaseException:
            # The start() coroutine may still be mid-flight (e.g. the
            # engine build on an executor thread); let it settle and
            # tear the gateway down before killing the loop, so a slow
            # startup never orphans already-spawned shard workers.
            with contextlib.suppress(BaseException):
                start_future.result(self._startup_timeout_s)
            with contextlib.suppress(BaseException):
                asyncio.run_coroutine_threadsafe(
                    self.gateway.stop(), self._loop
                ).result(self._startup_timeout_s)
            self._stop_loop()
            raise
        return self.host, self.port

    def run(self, coro, timeout_s: float | None = 60.0):
        """Execute a coroutine on the gateway's loop; return its result."""
        if self._loop is None:
            raise ConfigurationError("runner is not started")
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result(
            timeout_s
        )

    def stats(self) -> dict:
        """Synchronous :meth:`MonitorGateway.gateway_stats`."""
        return self.run(self.gateway.gateway_stats())

    def stop(self) -> None:
        """Stop the gateway and join the loop thread.  Idempotent."""
        if self._loop is None:
            return
        stop_future = asyncio.run_coroutine_threadsafe(
            self.gateway.stop(), self._loop
        )
        try:
            stop_future.result(self._startup_timeout_s)
        except BaseException:
            # A slow shutdown (per-session drains, writer flushes) must
            # still finish terminating worker processes before the loop
            # dies — give it one more full timeout, best effort.
            with contextlib.suppress(BaseException):
                stop_future.result(self._startup_timeout_s)
            raise
        finally:
            self._stop_loop()

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(30.0)
        self._loop.close()
        self._loop = None
        self._thread = None

    def __enter__(self) -> "GatewayRunner":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
