"""Tests for the safety-monitoring core (classifiers, pipeline, timing)."""

import numpy as np
import pytest

from repro.config import MonitorConfig, WindowConfig
from repro.core import SafetyMonitor, evaluate_timing
from repro.core.divergence import js_divergence_matrix
from repro.core.error_classifiers import ErrorClassifier
from repro.errors import DatasetError, NotFittedError
from repro.gestures.vocabulary import Gesture


class TestGestureClassifier:
    def test_learns_gestures(self, tiny_gesture_classifier, suturing_split):
        __, test = suturing_split
        acc = tiny_gesture_classifier.accuracy(test)
        assert acc > 0.6  # tiny model, few epochs — well above 1/15 chance

    def test_predict_frames_full_coverage(self, tiny_gesture_classifier, suturing_split):
        __, test = suturing_split
        traj = test.demonstrations[0].trajectory
        gestures, latency = tiny_gesture_classifier.predict_frames(traj)
        assert gestures.shape == (traj.n_frames,)
        assert gestures.min() >= 1 and gestures.max() <= 15
        assert latency >= 0.0

    def test_requires_fit(self, suturing_split):
        from repro.core.gesture_classifier import GestureClassifier

        __, test = suturing_split
        with pytest.raises(NotFittedError):
            GestureClassifier().predict_frames(test.demonstrations[0].trajectory)


class TestErrorClassifier:
    def test_learns_separable_errors(self, rng):
        x = rng.standard_normal((400, 5, 6))
        y = (x[:, :, 2].mean(axis=1) > 0).astype(int)
        clf = ErrorClassifier(Gesture.G4, seed=0)
        clf.fit(x, y)
        assert (clf.predict(x) == y).mean() > 0.9

    def test_rejects_single_class(self, rng):
        x = rng.standard_normal((50, 5, 6))
        with pytest.raises(DatasetError):
            ErrorClassifier(Gesture.G4).fit(x, np.zeros(50))

    def test_library_contents(self, tiny_library):
        trained = tiny_library.gestures()
        # The frequent erroneous gestures must have classifiers.
        assert Gesture.G3 in trained
        assert Gesture.G4 in trained
        assert Gesture.G6 in trained
        # G10 has no rubric errors -> constant classifier.
        assert not tiny_library.has_classifier(Gesture.G10)

    def test_library_unknown_gesture_safe(self, tiny_library, rng):
        probs = tiny_library.predict_proba(Gesture.G15, rng.standard_normal((3, 5, 38)))
        assert np.allclose(probs, 0.0)


class TestBaselineMonitor:
    def test_predicts_probabilities(self, tiny_baseline, suturing_split):
        __, test = suturing_split
        data = test.windows(WindowConfig(5, 1))
        probs = tiny_baseline.predict_proba(data.x[:100])
        assert probs.shape == (100,)
        assert np.all((0 <= probs) & (probs <= 1))

    def test_detects_better_than_chance(self, tiny_baseline, suturing_split):
        from repro.eval import auc_score

        __, test = suturing_split
        data = test.windows(WindowConfig(5, 1))
        probs = tiny_baseline.predict_proba(data.x)
        assert auc_score(data.unsafe, probs) > 0.55


class TestSafetyMonitor:
    @pytest.fixture()
    def monitor(self, tiny_gesture_classifier, tiny_library):
        return SafetyMonitor(
            tiny_gesture_classifier,
            tiny_library,
            MonitorConfig(
                gesture_window=WindowConfig(5, 1), error_window=WindowConfig(5, 1)
            ),
        )

    def test_process_output_shapes(self, monitor, suturing_split):
        __, test = suturing_split
        traj = test.demonstrations[0].trajectory
        out = monitor.process(traj)
        assert out.gestures.shape == (traj.n_frames,)
        assert out.unsafe_scores.shape == (traj.n_frames,)
        assert set(np.unique(out.unsafe_flags)) <= {0, 1}
        assert out.compute_ms >= 0.0

    def test_perfect_boundaries_uses_truth(self, monitor, suturing_split):
        __, test = suturing_split
        traj = test.demonstrations[0].trajectory
        out = monitor.process(traj, use_true_gestures=True)
        assert np.array_equal(out.gestures, traj.gestures)
        assert out.gesture_ms == 0.0

    def test_detects_something_on_erroneous_demo(self, monitor, suturing_split):
        __, test = suturing_split
        for demo in test.demonstrations:
            if demo.trajectory.unsafe.any():
                out = monitor.process(demo.trajectory, use_true_gestures=True)
                assert out.unsafe_flags.any()
                return
        pytest.skip("no erroneous demo in the split")

    def test_streaming_matches_online_contract(self, monitor, suturing_split):
        __, test = suturing_split
        traj = test.demonstrations[0].trajectory.slice(0, 60)
        events = list(monitor.stream(traj))
        assert len(events) == traj.n_frames
        frames = [t for t, *_ in events]
        assert frames == list(range(traj.n_frames))
        # After warm-up, the stream emits real gestures and scores.
        __, gesture, score, latency = events[-1]
        assert 1 <= gesture <= 15
        assert 0.0 <= score <= 1.0
        assert latency >= 0.0


class TestTimingEvaluation:
    def test_report_aggregates(self, tiny_gesture_classifier, tiny_library, suturing_split):
        __, test = suturing_split
        monitor = SafetyMonitor(
            tiny_gesture_classifier,
            tiny_library,
            MonitorConfig(
                gesture_window=WindowConfig(5, 1), error_window=WindowConfig(5, 1)
            ),
        )
        pairs = [
            (d.trajectory, monitor.process(d.trajectory, use_true_gestures=True))
            for d in test.demonstrations[:3]
        ]
        report = evaluate_timing(pairs)
        assert report.frame_rate_hz == 30.0
        assert isinstance(report.mean_reaction_ms(), float)
        for gesture in report.gesture_frames:
            assert 0.0 <= report.gesture_accuracy(gesture) <= 1.0

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            evaluate_timing([])


class TestDivergence:
    def test_matrix_properties(self, suturing_dataset):
        data = suturing_dataset.windows(WindowConfig(5, 2))
        matrix, gestures = js_divergence_matrix(data, n_components=1, rng_seed=0)
        n = len(gestures)
        assert matrix.shape == (n, n)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)
        assert matrix.max() <= np.log(2) + 1e-9
        assert matrix.min() >= 0.0

    def test_requires_errors(self, suturing_dataset):
        data = suturing_dataset.windows(WindowConfig(5, 2))
        data.unsafe[:] = 0
        with pytest.raises(DatasetError):
            js_divergence_matrix(data)
