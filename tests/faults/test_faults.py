"""Tests for the fault-injection tool (types, injector, outcomes, campaign)."""

import numpy as np
import pytest

from repro.errors import FaultInjectionError
from repro.faults import (
    CartesianFault,
    FaultInjector,
    FaultSpec,
    FaultWindow,
    GrasperAngleFault,
    gesture_error_labels,
    outcome_error_category,
    run_campaign,
)
from repro.faults.campaign import TABLE_III_GRID, generate_fault_free_demos
from repro.simulation import PhysicsOutcome, RavenSimulator, Workspace
from repro.simulation.teleop import DEFAULT_OPERATORS


class TestFaultTypes:
    def test_window_to_frames(self):
        window = FaultWindow(0.25, 0.75)
        assert window.to_frames(100) == (25, 75)
        assert window.duration_frac == pytest.approx(0.5)

    def test_window_validation(self):
        with pytest.raises(FaultInjectionError):
            FaultWindow(0.5, 0.5)
        with pytest.raises(FaultInjectionError):
            FaultWindow(-0.1, 0.5)

    def test_cartesian_per_axis(self):
        fault = CartesianFault(deviation_mm=np.sqrt(3.0), window=FaultWindow(0.1, 0.5))
        assert fault.per_axis_mm == pytest.approx(1.0)

    def test_spec_needs_component(self):
        with pytest.raises(FaultInjectionError):
            FaultSpec()

    def test_describe(self):
        spec = FaultSpec(grasper=GrasperAngleFault(1.2, FaultWindow(0.5, 0.7)))
        assert "1.20rad" in spec.describe()


class TestInjector:
    def make_commands(self):
        return generate_fault_free_demos(n_demos=1, sample_rate_hz=50.0, rng=0)[0]

    def test_grasper_injection_reaches_target(self):
        commands = self.make_commands()
        spec = FaultSpec(grasper=GrasperAngleFault(1.4, FaultWindow(0.5, 0.8)))
        faulty = FaultInjector().inject(commands, spec)
        arm = commands.transfer_arm
        start, end = spec.grasper.window.to_frames(commands.n_steps)
        assert faulty.jaw_angles[arm][end - 1] == pytest.approx(1.4)
        # Original untouched.
        assert commands.jaw_angles[arm][end - 1] != pytest.approx(1.4)

    def test_cartesian_injection_offsets_positions(self):
        commands = self.make_commands()
        spec = FaultSpec(cartesian=CartesianFault(30.0, FaultWindow(0.4, 0.6)))
        faulty = FaultInjector().inject(commands, spec)
        arm = commands.transfer_arm
        start, end = spec.cartesian.window.to_frames(commands.n_steps)
        mid = (start + end) // 2
        delta = faulty.positions[arm][mid] - commands.positions[arm][mid]
        assert np.allclose(delta, 30.0 / np.sqrt(3.0), atol=1e-6)

    def test_mask_recorded(self):
        commands = self.make_commands()
        spec = FaultSpec(grasper=GrasperAngleFault(1.2, FaultWindow(0.5, 0.7)))
        faulty = FaultInjector().inject(commands, spec)
        mask = faulty.metadata["fault_mask"]
        start, end = spec.grasper.window.to_frames(commands.n_steps)
        assert mask[start] and mask[end - 1]
        assert not mask[start - 1] and not mask[min(end, len(mask) - 1)]


class TestOutcomeMapping:
    def test_categories(self):
        assert outcome_error_category(PhysicsOutcome.SUCCESS) is None
        assert outcome_error_category(PhysicsOutcome.BLOCK_DROP) == "block_drop"
        assert (
            outcome_error_category(PhysicsOutcome.DROPOFF_FAILURE)
            == "dropoff_failure"
        )

    def test_gesture_error_labels_mark_whole_gestures(self):
        commands = generate_fault_free_demos(n_demos=1, sample_rate_hz=50.0, rng=3)[0]
        spec = FaultSpec(grasper=GrasperAngleFault(1.4, FaultWindow(0.55, 0.70)))
        faulty = FaultInjector().inject(commands, spec)
        sim = RavenSimulator(camera=None, rng=1)
        result = sim.run(faulty, record_video=False)
        assert result.outcome == PhysicsOutcome.BLOCK_DROP
        labels = gesture_error_labels(result)
        assert labels.any()
        # Whole-gesture semantics: within each gesture run, labels uniform.
        gestures = result.gestures
        boundaries = np.flatnonzero(np.diff(gestures)) + 1
        for start, end in zip(
            np.concatenate([[0], boundaries]),
            np.concatenate([boundaries, [len(gestures)]]),
        ):
            segment = labels[start:end]
            assert segment.min() == segment.max()

    def test_fault_free_labels_all_zero(self):
        commands = generate_fault_free_demos(n_demos=1, sample_rate_hz=50.0, rng=4)[0]
        sim = RavenSimulator(camera=None, rng=1)
        result = sim.run(commands, record_video=False)
        assert not gesture_error_labels(result).any()


class TestCampaign:
    def test_grid_matches_paper_total(self):
        assert sum(cell.n_injections for cell in TABLE_III_GRID) == 651

    def test_scaled_campaign_dose_response(self):
        result = run_campaign(scale=0.1, sample_rate_hz=50.0, rng=0)
        by_bin = {}
        for cell in result.cells:
            key = cell.cell.grasper_rad
            stats = by_bin.setdefault(key, [0, 0, 0])
            stats[0] += cell.n_injections
            stats[1] += cell.block_drops
            stats[2] += cell.dropoff_failures
        # High grasper angles must drop the block far more often than low.
        low = by_bin[(0.3, 0.4)]
        high = by_bin[(1.3, 1.4)]
        assert high[1] / high[0] > 0.6
        assert low[1] == 0
        # Low angles with long injections produce dropoff failures.
        assert low[2] > 0

    def test_keep_results(self):
        result = run_campaign(scale=0.02, sample_rate_hz=50.0, rng=1, keep_results=True)
        assert len(result.results) == result.total_injections

    def test_fault_free_demos_deterministic(self):
        a = generate_fault_free_demos(n_demos=2, rng=11)
        b = generate_fault_free_demos(n_demos=2, rng=11)
        assert np.allclose(a[0].positions["left"], b[0].positions["left"])

    def test_operators_alternate(self):
        demos = generate_fault_free_demos(n_demos=4, rng=0)
        names = [d.metadata["operator"] for d in demos]
        assert names[0] != names[1]
        assert names[0] == names[2]


class TestMonitoredCampaign:
    def test_bulk_and_looped_scoring_identical(self):
        """The monitored campaign under the bulk engine is a pure perf
        change: identical CellResults (counts and detections) and
        bit-identical per-trial monitor outputs vs the looped path."""
        from repro.serving import make_synthetic_monitor

        monitor = make_synthetic_monitor(n_features=38, seed=0)
        kwargs = dict(scale=0.02, sample_rate_hz=50.0, rng=3, monitor=monitor)
        bulk = run_campaign(monitor_bulk=True, **kwargs)
        looped = run_campaign(monitor_bulk=False, **kwargs)

        assert len(bulk.monitor_outputs) == bulk.total_injections
        assert bulk.total_detected == looped.total_detected
        for b_cell, l_cell in zip(bulk.cells, looped.cells):
            assert b_cell == l_cell
        for b_out, l_out in zip(bulk.monitor_outputs, looped.monitor_outputs):
            np.testing.assert_array_equal(b_out.gestures, l_out.gestures)
            np.testing.assert_array_equal(b_out.unsafe_scores, l_out.unsafe_scores)
            np.testing.assert_array_equal(b_out.unsafe_flags, l_out.unsafe_flags)

    def test_unmonitored_campaign_has_no_detections(self):
        result = run_campaign(scale=0.02, sample_rate_hz=50.0, rng=1)
        assert result.total_detected == 0
        assert result.monitor_outputs == []

    def test_compiled_backend_requires_bulk(self):
        from repro.errors import ConfigurationError
        from repro.serving import make_synthetic_monitor

        monitor = make_synthetic_monitor(n_features=38, seed=0)
        with pytest.raises(ConfigurationError):
            run_campaign(
                scale=0.02,
                rng=0,
                monitor=monitor,
                monitor_bulk=False,
                monitor_backend="compiled",
            )
