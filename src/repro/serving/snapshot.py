"""Serving-state serialisation for worker bootstrap and live migration.

Two codecs, one policy (arrays and JSON only — no pickled code crosses
a process boundary, mirroring :mod:`repro.nn.serialization`):

- **Monitor snapshots** — the sharded serving layer starts each worker
  process from one in-memory snapshot of the trained
  :class:`~repro.core.pipeline.SafetyMonitor`: :func:`monitor_to_bytes`
  packs both pipeline stages — every model via
  :func:`repro.nn.save_model_bytes`, every scaler's statistics, and the
  configuration needed to rebuild them — into a single ``.npz``
  archive, and :func:`monitor_from_bytes` reconstructs a monitor that
  is bit-identical at inference time.
- **Session snapshots** — live fleet elasticity moves *sessions*
  between workers without dropping a frame: :func:`session_to_bytes`
  packs a :class:`~repro.serving.service.SessionState` (ring contents
  of both window stages, pending frames, timeline, context) and
  :func:`session_from_bytes` restores it, byte-exactly, on the
  receiving worker — the payload of the ``migrate_out``/``migrate_in``
  transport ops.
"""

from __future__ import annotations

import io
import json
from dataclasses import asdict

import numpy as np

from ..config import MonitorConfig, TrainingConfig, WindowConfig
from ..core.error_classifiers import (
    ErrorClassifier,
    ErrorClassifierConfig,
    ErrorClassifierLibrary,
)
from ..core.gesture_classifier import GestureClassifier, GestureClassifierConfig
from ..core.pipeline import SafetyMonitor
from ..errors import ConfigurationError, NotFittedError
from ..gestures.vocabulary import Gesture
from ..kinematics.windows import WindowSlotState
from ..nn import (
    Adam,
    SigmoidBinaryCrossEntropy,
    SoftmaxCrossEntropy,
    StandardScaler,
    load_model_bytes,
    save_model_bytes,
)
from ..nn.backends import validate_backend_name
from .service import SessionState

#: Bumped when the archive layout changes; readers reject other versions.
SNAPSHOT_VERSION = 1

#: Version byte of the *session* archive (migration payloads); bumped
#: independently of the monitor snapshot layout.
SESSION_SNAPSHOT_VERSION = 1


def _bytes_to_array(data: bytes) -> np.ndarray:
    return np.frombuffer(data, dtype=np.uint8).copy()


def _scaler_arrays(scaler: StandardScaler, prefix: str, arrays: dict) -> None:
    if scaler.mean_ is None or scaler.scale_ is None:
        raise NotFittedError(f"{prefix}: scaler must be fitted before snapshot")
    arrays[f"{prefix}.scaler.mean"] = scaler.mean_
    arrays[f"{prefix}.scaler.scale"] = scaler.scale_


def _restore_scaler(archive, prefix: str) -> StandardScaler:
    scaler = StandardScaler()
    scaler.mean_ = np.asarray(archive[f"{prefix}.scaler.mean"])
    scaler.scale_ = np.asarray(archive[f"{prefix}.scaler.scale"])
    return scaler


def _window_pair(config: WindowConfig) -> list[int]:
    return [int(config.window), int(config.stride)]


def monitor_to_bytes(monitor: SafetyMonitor, backend: str | None = None) -> bytes:
    """Serialise a trained monitor into one in-memory ``.npz`` archive.

    Captures everything inference needs — gesture-stage model, scaler and
    window/feature configuration; every per-gesture error classifier with
    its model, scaler and decision threshold; constant (always-safe)
    gestures; monitor windows and unsafe threshold.  Raises
    :class:`~repro.errors.NotFittedError` when either stage is untrained.

    ``backend`` optionally embeds an inference-backend choice (one of
    :data:`repro.nn.backends.BACKEND_NAMES`) in the archive, so every
    worker bootstrapped from this snapshot runs the same plan —
    :class:`~repro.serving.sharded.ShardedMonitorService` reads it via
    :func:`snapshot_backend` when no explicit backend is passed.
    """
    classifier = monitor.gesture_classifier
    if classifier.model is None:
        raise NotFittedError("gesture classifier must be trained before snapshot")

    arrays: dict[str, np.ndarray] = {}
    arrays["gesture.model"] = _bytes_to_array(save_model_bytes(classifier.model))
    _scaler_arrays(classifier.scaler, "gesture", arrays)
    g_cfg = classifier.config
    if g_cfg.feature_indices is not None:
        arrays["gesture.feature_indices"] = np.asarray(
            g_cfg.feature_indices, dtype=np.int64
        )

    error_entries: list[dict] = []
    for gesture in sorted(monitor.library.classifiers, key=int):
        clf = monitor.library.classifiers[gesture]
        if clf.model is None:
            raise NotFittedError(f"error classifier {gesture!r} is untrained")
        prefix = f"error.{int(gesture)}"
        arrays[f"{prefix}.model"] = _bytes_to_array(save_model_bytes(clf.model))
        _scaler_arrays(clf.scaler, prefix, arrays)
        error_entries.append(
            {
                "gesture": int(gesture),
                "seed": int(clf.seed),
                "threshold": float(clf.threshold),
            }
        )

    e_cfg = monitor.library.config
    meta = {
        "version": SNAPSHOT_VERSION,
        "threshold": float(monitor.threshold),
        # Optional serving preferences; readers tolerate their absence,
        # so older archives stay loadable under SNAPSHOT_VERSION 1.
        "serving": (
            {"backend": validate_backend_name(backend)}
            if backend is not None
            else {}
        ),
        "monitor_config": {
            "gesture_window": _window_pair(monitor.config.gesture_window),
            "error_window": _window_pair(monitor.config.error_window),
            "frame_rate_hz": float(monitor.config.frame_rate_hz),
            "unsafe_vote_threshold": float(monitor.config.unsafe_vote_threshold),
        },
        "gesture": {
            "seed": int(classifier.seed),
            "lstm_units": [int(u) for u in g_cfg.lstm_units],
            "dense_units": int(g_cfg.dense_units),
            "window": _window_pair(g_cfg.window),
            "dropout": float(g_cfg.dropout),
            "use_batch_norm": bool(g_cfg.use_batch_norm),
            "max_train_windows": g_cfg.max_train_windows,
            "training": asdict(g_cfg.training),
        },
        "library": {
            "seed": int(monitor.library.seed),
            "architecture": e_cfg.architecture,
            "hidden": [int(u) for u in e_cfg.hidden],
            "dense_units": int(e_cfg.dense_units),
            "dropout": float(e_cfg.dropout),
            "use_batch_norm": bool(e_cfg.use_batch_norm),
            "max_train_windows": e_cfg.max_train_windows,
            "training": asdict(e_cfg.training),
            "constant_gestures": sorted(
                int(g) for g in monitor.library.constant_gestures
            ),
            "classifiers": error_entries,
        },
    }
    arrays["__meta__"] = _bytes_to_array(json.dumps(meta).encode("utf-8"))
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def _read_meta(archive) -> dict:
    """Parse and version-check an open archive's ``__meta__`` entry.

    Shared by every reader so a future ``SNAPSHOT_VERSION`` bump or
    layout change cannot make :func:`snapshot_backend` and
    :func:`monitor_from_bytes` disagree on which archives load.
    """
    meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
    if meta.get("version") != SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"unsupported monitor snapshot version {meta.get('version')!r}"
        )
    return meta


def snapshot_backend(data: bytes) -> str | None:
    """Inference-backend choice embedded in a snapshot, or ``None``.

    Reads only the archive's metadata — no models are rebuilt, so the
    sharded router can resolve its fleet-wide backend before any worker
    spawns.
    """
    with np.load(io.BytesIO(data)) as archive:
        meta = _read_meta(archive)
    return meta.get("serving", {}).get("backend")


def snapshot_n_features(data: bytes) -> int | None:
    """Kinematics feature width a snapshot's monitor was trained for.

    Mirrors the width rule of
    :meth:`MonitorService._expected_n_features`: the error-stage scalers
    see full-width frames, the gesture scaler only does when no feature
    subset is configured.  Returns ``None`` when the archive constrains
    nothing.  Like :func:`snapshot_backend` this reads scaler statistics
    only — no models are rebuilt — so the sharded router can validate
    ``feed()`` widths synchronously before a frame block ever enters the
    asynchronous shared-memory data plane.
    """
    with np.load(io.BytesIO(data)) as archive:
        _read_meta(archive)
        if "gesture.feature_indices" not in archive.files:
            return int(archive["gesture.scaler.mean"].shape[0])
        for key in archive.files:
            if key.startswith("error.") and key.endswith(".scaler.mean"):
                return int(archive[key].shape[0])
    return None


def monitor_from_bytes(data: bytes) -> SafetyMonitor:
    """Rebuild a :class:`SafetyMonitor` from :func:`monitor_to_bytes` output.

    The reconstructed monitor produces bit-identical gestures and unsafe
    scores: models are restored weight-for-weight and scalers
    statistic-for-statistic, and inference is batch-size invariant.
    """
    with np.load(io.BytesIO(data)) as archive:
        meta = _read_meta(archive)

        g_meta = meta["gesture"]
        feature_indices = None
        if "gesture.feature_indices" in archive.files:
            feature_indices = np.asarray(archive["gesture.feature_indices"])
        gesture_config = GestureClassifierConfig(
            lstm_units=tuple(g_meta["lstm_units"]),
            dense_units=g_meta["dense_units"],
            window=WindowConfig(*g_meta["window"]),
            feature_indices=feature_indices,
            dropout=g_meta["dropout"],
            use_batch_norm=g_meta["use_batch_norm"],
            training=TrainingConfig(**g_meta["training"]),
            max_train_windows=g_meta["max_train_windows"],
        )
        classifier = GestureClassifier(gesture_config, seed=g_meta["seed"])
        classifier.model = load_model_bytes(bytes(archive["gesture.model"]))
        # Loaded models are weight-complete but uncompiled; inference only
        # needs the loss's probability head, not the training state.
        classifier.model.compile(
            loss=SoftmaxCrossEntropy(),
            optimizer=Adam(gesture_config.training.learning_rate),
        )
        classifier.scaler = _restore_scaler(archive, "gesture")
        classifier._fitted = True

        l_meta = meta["library"]
        error_config = ErrorClassifierConfig(
            architecture=l_meta["architecture"],
            hidden=tuple(l_meta["hidden"]),
            dense_units=l_meta["dense_units"],
            dropout=l_meta["dropout"],
            use_batch_norm=l_meta["use_batch_norm"],
            training=TrainingConfig(**l_meta["training"]),
            max_train_windows=l_meta["max_train_windows"],
        )
        library = ErrorClassifierLibrary(error_config, seed=l_meta["seed"])
        library.constant_gestures = {
            Gesture(int(g)) for g in l_meta["constant_gestures"]
        }
        for entry in l_meta["classifiers"]:
            gesture = Gesture(int(entry["gesture"]))
            clf = ErrorClassifier(gesture, error_config, seed=entry["seed"])
            prefix = f"error.{int(gesture)}"
            clf.model = load_model_bytes(bytes(archive[f"{prefix}.model"]))
            clf.model.compile(
                loss=SigmoidBinaryCrossEntropy(),
                optimizer=Adam(error_config.training.learning_rate),
            )
            clf.scaler = _restore_scaler(archive, prefix)
            clf.threshold = entry["threshold"]
            clf._fitted = True
            library.classifiers[gesture] = clf

        monitor_meta = meta["monitor_config"]
        config = MonitorConfig(
            gesture_window=WindowConfig(*monitor_meta["gesture_window"]),
            error_window=WindowConfig(*monitor_meta["error_window"]),
            frame_rate_hz=monitor_meta["frame_rate_hz"],
            unsafe_vote_threshold=monitor_meta["unsafe_vote_threshold"],
        )
    return SafetyMonitor(
        classifier, library, config, threshold=meta["threshold"]
    )


# ----------------------------------------------------------------------
# Session snapshots (live migration payloads)
# ----------------------------------------------------------------------
def session_to_bytes(state: SessionState) -> bytes:
    """Serialise a :class:`SessionState` into one ``.npz`` archive.

    Arrays (timeline, pending frames, window ring rows) travel as raw
    npz entries — bit-exact float64 — and scalars as JSON metadata, so
    a migrated session resumes with byte-identical state.  This is the
    wire payload of the sharded transport's ``migrate_out`` /
    ``migrate_in`` operations.
    """
    arrays: dict[str, np.ndarray] = {
        "gestures": np.asarray(state.gestures, dtype=np.int64),
        "scores": np.asarray(state.scores, dtype=float),
        "pending": np.asarray(state.pending, dtype=float),
    }
    windows_meta = {}
    for name, slot_state in (
        ("gesture_window", state.gesture_window),
        ("error_window", state.error_window),
    ):
        if slot_state is None:
            continue
        arrays[f"{name}.buffer"] = np.asarray(slot_state.buffer, dtype=float)
        windows_meta[name] = {
            "seen": int(slot_state.seen),
            "since_emit": int(slot_state.since_emit),
        }
    meta = {
        "version": SESSION_SNAPSHOT_VERSION,
        "session_id": state.session_id,
        "frames_done": int(state.frames_done),
        "record_timeline": bool(state.record_timeline),
        "current_gesture": int(state.current_gesture),
        # json round-trips finite float64 exactly (shortest-repr), so
        # the sticky score survives migration bit for bit.
        "current_score": float(state.current_score),
        "n_features": (
            int(state.n_features) if state.n_features is not None else None
        ),
        "windows": windows_meta,
    }
    arrays["__meta__"] = _bytes_to_array(json.dumps(meta).encode("utf-8"))
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


def session_snapshot_id(data: bytes) -> str:
    """Session id embedded in a :func:`session_to_bytes` archive.

    Reads only the metadata entry — no arrays are materialised — so the
    sharded router and the gateway's resume path can resolve placement
    for an imported session without decoding the full window state.
    Raises :class:`~repro.errors.ConfigurationError` on a foreign
    version byte, like :func:`session_from_bytes`.
    """
    with np.load(io.BytesIO(data)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
    if meta.get("version") != SESSION_SNAPSHOT_VERSION:
        raise ConfigurationError(
            f"unsupported session snapshot version {meta.get('version')!r}"
        )
    return str(meta["session_id"])


def session_from_bytes(data: bytes) -> SessionState:
    """Rebuild a :class:`SessionState` from :func:`session_to_bytes` output.

    Raises :class:`~repro.errors.ConfigurationError` on a foreign
    version byte or an archive missing either half of a window pair.
    """
    with np.load(io.BytesIO(data)) as archive:
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("version") != SESSION_SNAPSHOT_VERSION:
            raise ConfigurationError(
                f"unsupported session snapshot version {meta.get('version')!r}"
            )
        windows: dict[str, WindowSlotState | None] = {}
        for name in ("gesture_window", "error_window"):
            entry = meta.get("windows", {}).get(name)
            if entry is None:
                windows[name] = None
                continue
            key = f"{name}.buffer"
            if key not in archive.files:
                raise ConfigurationError(
                    f"session snapshot is missing the {key!r} array"
                )
            windows[name] = WindowSlotState(
                buffer=np.asarray(archive[key], dtype=float),
                seen=int(entry["seen"]),
                since_emit=int(entry["since_emit"]),
            )
        state = SessionState(
            session_id=meta["session_id"],
            frames_done=int(meta["frames_done"]),
            record_timeline=bool(meta["record_timeline"]),
            current_gesture=int(meta["current_gesture"]),
            current_score=float(meta["current_score"]),
            gestures=np.asarray(archive["gestures"], dtype=np.int64),
            scores=np.asarray(archive["scores"], dtype=float),
            pending=np.asarray(archive["pending"], dtype=float),
            n_features=(
                int(meta["n_features"])
                if meta.get("n_features") is not None
                else None
            ),
            gesture_window=windows["gesture_window"],
            error_window=windows["error_window"],
        )
    return state
