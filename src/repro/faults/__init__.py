"""Software fault injection for the Raven II simulator (paper Section IV-B).

The paper's fault-injection tool perturbs kinematic state variables of the
robot control software — the Grasper Angle and the Cartesian Position of
the instrument end-effectors — to mimic the manifestation of accidental or
malicious faults and human errors.  Each fault is characterised by the
targeted variable, the injected value and the injection duration.

- :mod:`~repro.faults.types` — fault specifications;
- :mod:`~repro.faults.injector` — applies a specification to a commanded
  trajectory (the faulty packets sent to the robot control software);
- :mod:`~repro.faults.outcomes` — maps physical outcomes to the error
  categories of Table III and derives erroneous-gesture labels;
- :mod:`~repro.faults.campaign` — the full Table III injection campaign.
"""

from .campaign import (
    CampaignCell,
    CampaignResult,
    TABLE_III_GRID,
    run_campaign,
)
from .injector import FaultInjector
from .outcomes import gesture_error_labels, outcome_error_category
from .types import CartesianFault, FaultSpec, FaultWindow, GrasperAngleFault

__all__ = [
    "CampaignCell",
    "CampaignResult",
    "CartesianFault",
    "FaultInjector",
    "FaultSpec",
    "FaultWindow",
    "GrasperAngleFault",
    "TABLE_III_GRID",
    "gesture_error_labels",
    "outcome_error_category",
    "run_campaign",
]
