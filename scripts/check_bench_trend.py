#!/usr/bin/env python
"""Perf-trend gate: diff fresh benchmark reports against committed baselines.

The perf CI job regenerates ``BENCH_serving.json`` / ``BENCH_bulk.json``
on every run, but until now only *absolute* contracts were gated (e.g.
"4 shards must reach 2x").  A slow 20% drift sits comfortably inside
those contracts while eating the headroom that made them pass.  This
gate closes that hole: for every throughput leaf (any ``fps`` /
``*_fps`` field) present in both the committed baseline and the fresh
report, it computes ``fresh / baseline`` and

- **warns** when a row regressed by at least ``--warn`` (default 10%),
- **fails** (exit 1) when a row regressed by at least ``--fail``
  (default 25%).

Improvements and rows that exist on only one side (new scenarios,
renamed rows) are reported but never gated — the gate must not punish
adding coverage.  Rows are matched by a stable identity label built
from the fields that name a scenario (``engine`` / ``backend`` /
``shards`` / ``sessions`` / ``scenario`` / ``resize_path``), not by
list position, so inserting a row does not misalign the rest.

Like ``--check-sharded`` and ``--check-balance`` in the serving bench,
the gate REFUSES (exit non-zero, loud message) below ``--min-cores``
visible cores instead of silently passing: a throughput ratio measured
on an under-provisioned runner against a baseline from a bigger box is
noise, and a silent pass there is how regressions slip through.

Usage (the perf job snapshots the committed files before re-running):

    python scripts/check_bench_trend.py \\
        --pair /tmp/baseline_serving.json:BENCH_serving.json \\
        --pair /tmp/baseline_bulk.json:BENCH_bulk.json

A GitHub-flavoured markdown table is appended to ``$GITHUB_STEP_SUMMARY``
when that variable is set (override with ``--summary``).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys

#: Fields that identify a benchmark row independent of list position.
IDENTITY_KEYS = (
    "engine",
    "backend",
    "shards",
    "sessions",
    "scenario",
    "resize_path",
)


def visible_cores() -> int:
    """CPU cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # non-Linux
        return os.cpu_count() or 1


def collect_fps(node, prefix: str = "") -> dict[str, float]:
    """Every ``fps`` / ``*_fps`` leaf in a report, keyed by a stable path.

    Dicts contribute their key name to the path; list entries contribute
    an identity label built from :data:`IDENTITY_KEYS` when the row
    carries any (falling back to the index), so rows keep their labels
    when neighbours are added or reordered.
    """
    leaves: dict[str, float] = {}
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            if (key == "fps" or key.endswith("_fps")) and isinstance(
                value, (int, float)
            ):
                leaves[f"{prefix}.{key}" if prefix else key] = float(value)
            else:
                sub = f"{prefix}.{key}" if prefix else key
                leaves.update(collect_fps(value, sub))
    elif isinstance(node, list):
        for i, value in enumerate(node):
            label = str(i)
            if isinstance(value, dict):
                parts = [
                    f"{k}={value[k]}" for k in IDENTITY_KEYS if k in value
                ]
                if parts:
                    label = ",".join(parts)
            leaves.update(collect_fps(value, f"{prefix}[{label}]"))
    return leaves


@dataclasses.dataclass
class TrendRow:
    """One compared throughput leaf."""

    label: str
    baseline: float
    fresh: float
    status: str  # "ok" | "warn" | "fail" | "baseline-only" | "fresh-only"

    @property
    def ratio(self) -> float:
        return self.fresh / self.baseline if self.baseline else float("inf")


def compare_reports(
    baseline: dict,
    fresh: dict,
    *,
    warn: float = 0.10,
    fail: float = 0.25,
) -> list[TrendRow]:
    """Diff two parsed reports; one :class:`TrendRow` per fps leaf."""
    base_leaves = collect_fps(baseline)
    fresh_leaves = collect_fps(fresh)
    rows: list[TrendRow] = []
    for label in sorted(set(base_leaves) | set(fresh_leaves)):
        if label not in fresh_leaves:
            rows.append(
                TrendRow(label, base_leaves[label], 0.0, "baseline-only")
            )
            continue
        if label not in base_leaves:
            rows.append(TrendRow(label, 0.0, fresh_leaves[label], "fresh-only"))
            continue
        base, new = base_leaves[label], fresh_leaves[label]
        regression = 1.0 - (new / base) if base else 0.0
        if regression >= fail:
            status = "fail"
        elif regression >= warn:
            status = "warn"
        else:
            status = "ok"
        rows.append(TrendRow(label, base, new, status))
    return rows


def render_markdown(pairs: list[tuple[str, list[TrendRow]]]) -> str:
    """The step-summary table: one section per compared report pair."""
    icons = {
        "ok": "✅",
        "warn": "⚠️ warn",
        "fail": "❌ fail",
        "baseline-only": "➖ gone",
        "fresh-only": "➕ new",
    }
    lines = ["## Benchmark trend vs committed baseline", ""]
    for name, rows in pairs:
        lines += [f"### {name}", ""]
        lines += [
            "| row | baseline fps | fresh fps | ratio | status |",
            "|---|---:|---:|---:|---|",
        ]
        for row in rows:
            ratio = (
                f"{row.ratio:.2f}x"
                if row.status in ("ok", "warn", "fail")
                else "—"
            )
            lines.append(
                f"| `{row.label}` | {row.baseline:.0f} | {row.fresh:.0f} "
                f"| {ratio} | {icons[row.status]} |"
            )
        lines.append("")
    return "\n".join(lines)


def _load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--pair",
        action="append",
        required=True,
        metavar="BASELINE:FRESH",
        help="baseline and fresh report paths, colon-separated; repeatable",
    )
    parser.add_argument(
        "--warn",
        type=float,
        default=0.10,
        help="warn on regressions >= this fraction (default: %(default)s)",
    )
    parser.add_argument(
        "--fail",
        type=float,
        default=0.25,
        help="fail on regressions >= this fraction (default: %(default)s)",
    )
    parser.add_argument(
        "--min-cores",
        type=int,
        default=4,
        help=(
            "REFUSE (exit non-zero) below this many visible cores rather "
            "than comparing noise (default: %(default)s)"
        ),
    )
    parser.add_argument(
        "--summary",
        default=os.environ.get("GITHUB_STEP_SUMMARY"),
        help="markdown summary file to append to (default: "
        "$GITHUB_STEP_SUMMARY when set)",
    )
    args = parser.parse_args(argv)
    if not 0 <= args.warn <= args.fail:
        parser.error("need 0 <= --warn <= --fail")

    n_cores = visible_cores()
    if n_cores < args.min_cores:
        print(
            f"check-bench-trend: REFUSED — only {n_cores} CPU core(s) "
            f"visible and the trend gate needs >= {args.min_cores} for a "
            f"throughput comparison that means anything.  Run this gate "
            f"on a >= {args.min_cores}-core runner.",
            file=sys.stderr,
        )
        return 1

    status = 0
    sections: list[tuple[str, list[TrendRow]]] = []
    for pair in args.pair:
        baseline_path, _, fresh_path = pair.partition(":")
        if not fresh_path:
            parser.error(f"--pair needs BASELINE:FRESH, got {pair!r}")
        rows = compare_reports(
            _load(baseline_path),
            _load(fresh_path),
            warn=args.warn,
            fail=args.fail,
        )
        sections.append((os.path.basename(fresh_path), rows))
        for row in rows:
            if row.status == "fail":
                print(
                    f"FAIL: {fresh_path}: {row.label} regressed "
                    f"{(1 - row.ratio) * 100:.0f}% "
                    f"({row.baseline:.0f} -> {row.fresh:.0f} fps)",
                    file=sys.stderr,
                )
                status = 1
            elif row.status == "warn":
                print(
                    f"warn: {fresh_path}: {row.label} regressed "
                    f"{(1 - row.ratio) * 100:.0f}% "
                    f"({row.baseline:.0f} -> {row.fresh:.0f} fps)"
                )
        n_fail = sum(r.status == "fail" for r in rows)
        n_warn = sum(r.status == "warn" for r in rows)
        print(
            f"{fresh_path}: {len(rows)} rows vs {baseline_path} — "
            f"{n_fail} fail, {n_warn} warn"
        )

    if args.summary:
        with open(args.summary, "a") as fh:
            fh.write(render_markdown(sections) + "\n")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
