"""Pluggable inference backends behind the serving tick engine.

See :mod:`repro.nn.backends.base` for the protocol and the design
contract, :mod:`repro.nn.backends.compiled` for the compiled-plan
internals.  The serving stack selects a backend by name
(``"reference"`` / ``"compiled"`` / ``"compiled-f32"``) via
:func:`make_backend`; ``docs/serving.md`` has the operator guidance.
"""

from .base import (
    BACKEND_NAMES,
    DEFAULT_BACKEND,
    InferenceBackend,
    make_backend,
    validate_backend_name,
)
from .compiled import BULK_MAX_BATCH, CompiledBackend
from .reference import ReferenceBackend

__all__ = [
    "BACKEND_NAMES",
    "BULK_MAX_BATCH",
    "CompiledBackend",
    "DEFAULT_BACKEND",
    "InferenceBackend",
    "ReferenceBackend",
    "make_backend",
    "validate_backend_name",
]
