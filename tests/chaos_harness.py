"""Reusable chaos campaign for the remote gateway's resume machinery.

Drives a fleet of sessions over a real TCP gateway while a seeded RNG
injects faults — abrupt client disconnects followed by resumes on fresh
connections, SIGKILLed shard workers, mid-stream fleet resizes, and
balancer-style session sheds (live migrations through the placement
overlay) — then asserts the two invariants the resume protocol
promises:

- **zero lost frames**: every session's closing summary accounts for
  every frame the campaign fed, across any number of disconnects,
  worker crashes and migrations;
- **bit-identical event streams**: each session's collected events
  (scores, gestures, flags, order) match an uninterrupted single
  :class:`~repro.serving.MonitorService` run of the same trajectory.

Everything is derived from ``ChaosConfig.seed`` so a failing campaign
reproduces exactly; the seed is embedded in every failure message.
Used by ``tests/serving/test_chaos.py`` (marked ``chaos``, excluded
from the default tier-1 run) but importable from anywhere next to the
root ``conftest.py``.
"""

from __future__ import annotations

import dataclasses
import os
import time

import numpy as np

from repro.errors import ProtocolError, ReproError, WorkerError
from repro.serving import (
    EventStoreReader,
    EventStoreWriter,
    MonitorGateway,
    MonitorService,
    RemoteMonitorClient,
    make_random_walk_trajectory,
)


@dataclasses.dataclass
class ChaosConfig:
    """Knobs for one campaign; everything flows from ``seed``."""

    seed: int = 2020
    n_sessions: int = 64
    n_injections: int = 200
    n_features: int = 10
    n_shards: int = 4
    max_sessions_per_shard: int = 96
    min_frames: int = 24
    max_frames: int = 44
    max_burst: int = 4
    n_clients: int = 8
    max_clients: int = 16
    resume_grace_s: float = 120.0
    resize_range: tuple[int, int] = (2, 5)
    final_drain_timeout_s: float = 180.0
    #: Directory for a durable event log the gateway tees into
    #: (:class:`~repro.serving.EventStoreWriter`), or ``None`` to run
    #: without one.  With a store the campaign additionally asserts the
    #: on-disk log replays **bit-identical** to the per-session event
    #: streams the clients collected, and that every applied resize and
    #: shed left a marker.
    event_store_dir: str | os.PathLike | None = None
    #: Directory for a reproduction bundle, or ``None``.  When set, the
    #: campaign writes a ``seed.txt`` naming the exact env overrides to
    #: replay it *before* any injection lands, and (unless
    #: ``event_store_dir`` says otherwise) keeps the durable log's
    #: segments underneath it — the nightly CI matrix uploads this
    #: directory as the on-failure artifact.
    artifact_dir: str | os.PathLike | None = None

    @classmethod
    def from_env(cls, **overrides) -> "ChaosConfig":
        """Build a config honouring CHAOS_SEED / CHAOS_SESSIONS /
        CHAOS_INJECTIONS / CHAOS_ARTIFACT_DIR environment overrides
        (the CI chaos jobs set CHAOS_SEED per run so failures name a
        reproducible seed)."""
        env = {
            "seed": os.environ.get("CHAOS_SEED"),
            "n_sessions": os.environ.get("CHAOS_SESSIONS"),
            "n_injections": os.environ.get("CHAOS_INJECTIONS"),
        }
        for key, raw in env.items():
            if raw is not None:
                overrides.setdefault(key, int(raw))
        artifact_dir = os.environ.get("CHAOS_ARTIFACT_DIR")
        if artifact_dir:
            overrides.setdefault("artifact_dir", artifact_dir)
        return cls(**overrides)


@dataclasses.dataclass
class ChaosReport:
    """What a campaign did and what it observed."""

    config: ChaosConfig
    injections: dict = dataclasses.field(default_factory=dict)
    feeds: int = 0
    frames_fed: int = 0
    resume_retries: int = 0
    lost_frames: dict = dataclasses.field(default_factory=dict)
    mismatches: dict = dataclasses.field(default_factory=dict)
    failed_sessions: dict = dataclasses.field(default_factory=dict)
    gateway_stats: dict = dataclasses.field(default_factory=dict)
    #: Per-session divergence between the on-disk log's replay and the
    #: client-collected stream (populated only with a store attached).
    store_mismatches: dict = dataclasses.field(default_factory=dict)
    #: ``resize`` markers found in the log vs resizes applied.
    store_resize_markers: int = 0
    #: ``shed`` markers found in the log vs sheds that moved sessions.
    store_shed_markers: int = 0
    store_stats: dict = dataclasses.field(default_factory=dict)

    @property
    def total_injections(self) -> int:
        return sum(self.injections.values())

    def describe(self) -> str:
        """One line naming the seed first — every assertion leads with
        it so a CI failure is reproducible from the log alone."""
        return (
            f"seed={self.config.seed} sessions={self.config.n_sessions} "
            f"injections={self.injections} feeds={self.feeds} "
            f"frames={self.frames_fed} retries={self.resume_retries}"
        )


class _SessionState:
    """Harness-side view of one chaos session."""

    __slots__ = ("sid", "frames", "fed", "client", "resume_state", "events")

    def __init__(self, sid, frames):
        self.sid = sid
        self.frames = frames
        self.fed = 0
        self.client = None  # live owner, or None while detached
        self.resume_state = None
        self.events = []

    @property
    def remaining(self) -> int:
        return self.frames.shape[0] - self.fed


def drain_available(client, timeout_s=0.05):
    """Pull every event already on (or about to hit) the wire without
    committing to a blocking wait — the campaign's steady-state relief
    valve for the gateway's bounded send queues."""
    events = []
    old = client._sock.gettimeout()
    client._sock.settimeout(timeout_s)
    try:
        while True:
            try:
                events.append(client.next_event())
            except TimeoutError:
                return events
    finally:
        client._sock.settimeout(old)


def reference_streams(monitor, trajectories):
    """The oracle: one uninterrupted MonitorService run per fleet,
    grouped per session.  Ticks are deterministic, so this is the
    bit-exact stream the chaotic run must reassemble."""
    service = MonitorService(
        monitor, max_sessions=max(4, len(trajectories)), backend="reference"
    )
    streams = {}
    for sid, frames in trajectories.items():
        service.open_session(sid)
        service.feed(sid, frames)
        streams[sid] = list(service.drain())
    return streams


def event_key(event):
    return (
        event.session_id,
        event.frame_index,
        event.gesture,
        event.score,
        event.flag,
        event.error,
    )


class ChaosCampaign:
    """One seeded campaign against one gateway.  See the module docs."""

    def __init__(self, monitor, config: ChaosConfig):
        self.monitor = monitor
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.report = ChaosReport(
            config=config,
            injections={
                "disconnect": 0,
                "resume": 0,
                "kill": 0,
                "resize": 0,
                "shed": 0,
            },
        )
        self.sessions: dict[str, _SessionState] = {}
        self.clients: list[RemoteMonitorClient] = []
        self.detached: list[str] = []
        self.reference: dict[str, list] = {}

    # -- plumbing ------------------------------------------------------
    def _new_client(self, runner) -> RemoteMonitorClient:
        client = RemoteMonitorClient(runner.host, runner.port, timeout_s=60.0)
        self.clients.append(client)
        return client

    def _sessions_of(self, client):
        return [s for s in self.sessions.values() if s.client is client]

    def _absorb(self, events):
        for event in events:
            self.sessions[event.session_id].events.append(event)

    def _fed_out(self) -> bool:
        return all(s.remaining == 0 for s in self.sessions.values())

    def _injections_left(self) -> bool:
        return self.report.total_injections < self.config.n_injections

    # -- actions -------------------------------------------------------
    def _act_feed(self):
        candidates = [
            s
            for s in self.sessions.values()
            if s.client is not None and s.remaining > 0
        ]
        if not candidates:
            return
        session = candidates[self.rng.integers(len(candidates))]
        burst = int(self.rng.integers(1, self.config.max_burst + 1))
        chunk = session.frames[session.fed : session.fed + burst]
        session.client.feed(session.sid, chunk)
        session.fed += chunk.shape[0]
        self.report.feeds += 1
        self.report.frames_fed += chunk.shape[0]

    def _act_drain(self):
        if not self.clients:
            return
        client = self.clients[self.rng.integers(len(self.clients))]
        self._absorb(drain_available(client))

    def _act_disconnect(self):
        """Abruptly kill one client connection: no CLOSE handshake, so
        the gateway parks every session it owned; their ResumeStates go
        to the detached pool for a later `resume` injection."""
        owners = [c for c in self.clients if self._sessions_of(c)]
        if not owners:
            return
        client = owners[self.rng.integers(len(owners))]
        client.close()
        self.clients.remove(client)
        for session in self._sessions_of(client):
            session.resume_state = client.detach_session(session.sid)
            session.client = None
            self.detached.append(session.sid)
        self.report.injections["disconnect"] += 1

    def _act_resume(self, runner):
        if not self.detached:
            return
        sid = self.detached.pop(int(self.rng.integers(len(self.detached))))
        session = self.sessions[sid]
        if self.clients and (
            len(self.clients) >= self.config.max_clients
            or self.rng.random() < 0.5
        ):
            client = self.clients[self.rng.integers(len(self.clients))]
        else:
            client = self._new_client(runner)
        attempts = 8
        for attempt in range(attempts):
            try:
                client.resume_session(session.resume_state)
                break
            except (WorkerError, ProtocolError) as exc:
                # Two legitimate transients: the gateway has not yet
                # noticed the old connection's EOF ("no parked session"
                # — we reconnected faster than it parked), or the
                # engine is mid-resize/mid-recovery.  A real client
                # retries with backoff; anything else is a bug the
                # campaign must surface.
                if isinstance(exc, ProtocolError) and (
                    "no parked session" not in str(exc)
                ):
                    raise
                self.report.resume_retries += 1
                if attempt == attempts - 1:
                    self.detached.append(sid)
                    return
                time.sleep(0.05 * (attempt + 1))
                if isinstance(exc, WorkerError):
                    client = self._new_client(runner)
        session.client = client
        session.resume_state = None
        self.report.injections["resume"] += 1

    def _act_kill(self, runner):
        """SIGKILL a live shard worker; with resume enabled the gateway
        must replay each victim session's journal onto a surviving
        shard with no client-visible interruption."""
        gateway = runner.gateway
        service = getattr(gateway._engine, "service", None)
        if service is None or not hasattr(service, "_shards"):
            return
        try:
            alive = [
                (index, handle)
                for index, handle in list(service._shards.items())
                if handle.process.is_alive()
            ]
        except RuntimeError:  # racing a resize on the loop thread
            return
        if len(alive) < 2:
            return  # never orphan the whole fleet
        index, handle = alive[self.rng.integers(len(alive))]
        handle.process.kill()
        handle.process.join(10.0)
        self.report.injections["kill"] += 1
        # Wait for every in-flight transparent recovery to settle so a
        # follow-up kill can't land while journals are mid-replay.
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            try:
                busy = any(
                    s.recovering for s in list(gateway._sessions.values())
                )
            except RuntimeError:  # racing the loop thread's dict resize
                busy = True
            if not busy:
                return
            time.sleep(0.02)

    def _act_resize(self, runner):
        low, high = self.config.resize_range
        target = int(self.rng.integers(low, high + 1))
        try:
            runner.run(runner.gateway.resize(target), timeout_s=120.0)
        except ReproError:
            return  # e.g. resize to the current K mid-recovery; not an injection
        self.report.injections["resize"] += 1

    def _act_shed(self, runner):
        """Live-migrate one attached session onto a random live shard —
        the balancer's actuation path, fired mid-stream so the placement
        overlay must keep routing follow-up frames to the moved session
        while disconnects, kills and resizes land around it."""
        gateway = runner.gateway
        service = getattr(gateway._engine, "service", None)
        if service is None or not hasattr(service, "_shards"):
            return
        try:
            alive = [
                index
                for index, handle in list(service._shards.items())
                if handle.process.is_alive()
            ]
        except RuntimeError:  # racing a resize on the loop thread
            return
        if len(alive) < 2:
            return  # nowhere to move anything
        attached = [
            s.sid for s in self.sessions.values() if s.client is not None
        ]
        if not attached:
            return
        sid = attached[self.rng.integers(len(attached))]
        target = int(alive[self.rng.integers(len(alive))])
        try:
            moved = runner.run(gateway.shed([sid], target), timeout_s=60.0)
        except ReproError:
            return  # target died or filled mid-call; not an injection
        if moved:
            # Only a shed that actually migrated counts: the session may
            # already live on the target, or may have been parked by a
            # racing disconnect before the call landed.
            self.report.injections["shed"] += 1

    # -- campaign ------------------------------------------------------
    def run(self) -> ChaosReport:
        config = self.config
        if config.artifact_dir is not None:
            # Reproduction bundle: the seed line lands on disk before a
            # single injection fires, so even a hung or crashed campaign
            # leaves enough to replay it; the durable log's segments
            # live underneath the same root unless told otherwise.
            root = os.fspath(config.artifact_dir)
            os.makedirs(root, exist_ok=True)
            if config.event_store_dir is None:
                config.event_store_dir = os.path.join(root, "eventstore")
            with open(
                os.path.join(root, "seed.txt"), "w", encoding="utf-8"
            ) as fh:
                fh.write(
                    f"CHAOS_SEED={config.seed} "
                    f"CHAOS_SESSIONS={config.n_sessions} "
                    f"CHAOS_INJECTIONS={config.n_injections}\n"
                )
        trajectories = {
            f"chaos-{i:03d}": make_random_walk_trajectory(
                int(
                    self.rng.integers(config.min_frames, config.max_frames + 1)
                ),
                n_features=config.n_features,
                seed=config.seed * 1000 + i,
            ).frames
            for i in range(config.n_sessions)
        }
        self.reference = reference_streams(self.monitor, trajectories)

        store = None
        if config.event_store_dir is not None:
            store = EventStoreWriter(config.event_store_dir, fsync="never")
        gateway = MonitorGateway(
            self.monitor,
            n_shards=config.n_shards,
            max_sessions=config.max_sessions_per_shard,
            backend="reference",
            resume_grace_s=config.resume_grace_s,
            heartbeat_interval_s=5.0,
            idle_timeout_s=300.0,
            send_queue_max=8192,
            event_store=store,
        )
        with gateway.serve_in_thread() as runner:
            for i, (sid, frames) in enumerate(trajectories.items()):
                if len(self.clients) < config.n_clients:
                    client = self._new_client(runner)
                else:
                    client = self.clients[i % config.n_clients]
                client.open_session(sid)
                session = _SessionState(sid, frames)
                session.client = client
                self.sessions[sid] = session

            while not (
                self._fed_out()
                and not self.detached
                and not self._injections_left()
            ):
                self._step(runner)

            self._reconcile(runner)
            self.report.gateway_stats = runner.stats()
            self.report.failed_sessions = dict(gateway.failed_sessions)
        if store is not None:
            store.close()
            self.report.store_stats = store.stats()
            self._check_store_parity(config.event_store_dir)
        return self.report

    def _check_store_parity(self, root):
        """Diff the durable log's replay against what clients saw.

        The tee sits past the gateway's duplicate filter, so the log is
        the exactly-once client-visible stream: per session, replaying
        it must be bit-identical (same key tuple per event, same order)
        to the events the campaign collected off the wire — across any
        number of disconnects, crash recoveries and migrations.
        """
        reader = EventStoreReader(root)
        logged: dict[str, list] = {sid: [] for sid in self.sessions}
        for event in reader.replay():
            logged.setdefault(event.session_id, []).append(event)
        for sid, session in self.sessions.items():
            got = [event_key(e) for e in logged.get(sid, [])]
            want = [event_key(e) for e in session.events]
            if got != want:
                self.report.store_mismatches[sid] = _first_divergence(
                    got, want
                )
        markers = list(reader.iter_markers())
        self.report.store_resize_markers = sum(
            1 for m in markers if m.get("type") == "resize"
        )
        self.report.store_shed_markers = sum(
            1 for m in markers if m.get("type") == "shed"
        )

    def _step(self, runner):
        """One weighted-random action.  Feeding dominates so injections
        land on a busy fleet; everything else is a fault or relief."""
        actions, weights = [], []
        if any(
            s.client is not None and s.remaining > 0
            for s in self.sessions.values()
        ):
            actions.append("feed")
            weights.append(6.0)
        actions.append("drain")
        weights.append(2.0)
        if self.detached:
            actions.append("resume")
            weights.append(2.5)
        if self._injections_left():
            if any(self._sessions_of(c) for c in self.clients):
                actions.append("disconnect")
                weights.append(1.2)
            actions.append("kill")
            weights.append(0.3)
            actions.append("resize")
            weights.append(0.5)
            actions.append("shed")
            weights.append(0.5)
        total = sum(weights)
        choice = self.rng.choice(actions, p=[w / total for w in weights])
        if choice == "feed":
            self._act_feed()
        elif choice == "drain":
            self._act_drain()
        elif choice == "disconnect":
            self._act_disconnect()
        elif choice == "resume":
            self._act_resume(runner)
        elif choice == "kill":
            self._act_kill(runner)
        elif choice == "resize":
            self._act_resize(runner)
        elif choice == "shed":
            self._act_shed(runner)

    def _reconcile(self, runner):
        """Collect every outstanding event, close every session, and
        diff against the oracle."""
        config = self.config
        deadline = time.monotonic() + config.final_drain_timeout_s
        while time.monotonic() < deadline:
            for client in list(self.clients):
                self._absorb(drain_available(client))
            if all(
                len(s.events) >= s.frames.shape[0]
                for s in self.sessions.values()
            ):
                break
            time.sleep(0.05)

        for session in self.sessions.values():
            expected = session.frames.shape[0]
            if session.client is None:
                self.report.lost_frames[session.sid] = (
                    f"left detached with {session.fed}/{expected} frames fed"
                )
                continue
            try:
                summary = session.client.close_session(session.sid)
            except ReproError as exc:
                self.report.lost_frames[session.sid] = f"close failed: {exc}"
                continue
            self._absorb(drain_available(session.client))
            if summary["n_frames"] != expected:
                self.report.lost_frames[session.sid] = (
                    f"gateway counted {summary['n_frames']} frames, "
                    f"fed {expected}"
                )

        for sid, session in self.sessions.items():
            got = [event_key(e) for e in session.events]
            want = [event_key(e) for e in self.reference[sid]]
            if got != want:
                self.report.mismatches[sid] = _first_divergence(got, want)

        for client in self.clients:
            client.close()


def _first_divergence(got, want):
    """A compact, log-friendly description of how two streams differ."""
    if len(got) != len(want):
        return f"{len(got)} events vs {len(want)} expected"
    for i, (g, w) in enumerate(zip(got, want)):
        if g != w:
            return f"event {i}: got {g}, want {w}"
    return "identical"  # pragma: no cover - only reached on caller bug


def run_campaign(monitor, config: ChaosConfig) -> ChaosReport:
    """Run one seeded campaign end to end; returns its report."""
    return ChaosCampaign(monitor, config).run()
