"""Benchmark: multi-stream serving throughput and per-tick latency.

Measures the batched :class:`repro.serving.MonitorService` against the
equivalent number of sequential single-stream
:meth:`~repro.core.SafetyMonitor.stream` loops, at 1 / 8 / 64 concurrent
sessions: frames per second, speedup, and p50/p99 per-tick latency.

The point of the serving tentpole is that each pipeline stage runs once
per tick on the window batch stacked *across* sessions, so throughput
should grow strongly sub-linearly in session count.

Run:  PYTHONPATH=src python benchmarks/bench_serving_throughput.py [--smoke]
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.serving import (
    MonitorService,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)

N_FEATURES = 38


def run_sequential(monitor, trajectories) -> tuple[float, np.ndarray]:
    """Total seconds and per-frame latencies for back-to-back streams."""
    latencies = []
    start = time.perf_counter()
    for trajectory in trajectories:
        for *_, latency_ms in monitor.stream(trajectory):
            latencies.append(latency_ms)
    return time.perf_counter() - start, np.asarray(latencies)


def run_service(monitor, trajectories) -> tuple[float, np.ndarray]:
    """Total seconds and per-tick latencies for one batched service."""
    service = MonitorService(monitor, max_sessions=len(trajectories))
    start = time.perf_counter()
    for trajectory in trajectories:
        session_id = service.open_session()
        service.feed(session_id, trajectory.frames)
    service.drain(collect=False)
    elapsed = time.perf_counter() - start
    return elapsed, np.asarray(service.stats.tick_ms)


def benchmark(n_sessions: int, n_frames: int, seed: int = 0) -> dict:
    """One row of the report: sequential vs batched at ``n_sessions``."""
    monitor = make_synthetic_monitor(n_features=N_FEATURES, seed=seed)
    trajectories = [
        make_random_walk_trajectory(n_frames, n_features=N_FEATURES, seed=seed + i)
        for i in range(n_sessions)
    ]
    total_frames = n_sessions * n_frames
    seq_s, _ = run_sequential(monitor, trajectories)
    srv_s, tick_ms = run_service(monitor, trajectories)
    return {
        "sessions": n_sessions,
        "frames": total_frames,
        "seq_fps": total_frames / seq_s,
        "srv_fps": total_frames / srv_s,
        "speedup": seq_s / srv_s,
        "tick_p50_ms": float(np.percentile(tick_ms, 50)),
        "tick_p99_ms": float(np.percentile(tick_ms, 99)),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="short trajectories for CI (seconds instead of minutes)",
    )
    parser.add_argument(
        "--frames", type=int, default=None, help="frames per session (override)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero unless the 64-session speedup reaches 3x",
    )
    args = parser.parse_args(argv)
    if args.frames is not None and args.frames < 1:
        parser.error("--frames must be >= 1")
    n_frames = args.frames if args.frames is not None else (120 if args.smoke else 600)

    print(f"serving throughput — {n_frames} frames/session, {N_FEATURES} features")
    print(
        f"{'sessions':>8} {'frames':>8} {'seq fps':>10} {'service fps':>12} "
        f"{'speedup':>8} {'tick p50':>9} {'tick p99':>9}"
    )
    rows = [benchmark(n, n_frames) for n in (1, 8, 64)]
    for r in rows:
        print(
            f"{r['sessions']:>8} {r['frames']:>8} {r['seq_fps']:>10.0f} "
            f"{r['srv_fps']:>12.0f} {r['speedup']:>7.1f}x "
            f"{r['tick_p50_ms']:>7.2f}ms {r['tick_p99_ms']:>7.2f}ms"
        )

    speedup_64 = rows[-1]["speedup"]
    print(f"\n64-session batched speedup over sequential streams: {speedup_64:.1f}x")
    if args.check and speedup_64 < 3.0:
        print("FAIL: expected >= 3x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
