"""Synthetic JIGSAWS-style surgical dataset (the paper's dVRK data).

The JIGSAWS dataset (Gao et al., 2014) is not redistributable here, so
this package synthesises demonstrations with the same *shape*: the same
19-variable-per-arm kinematics schema at 30 Hz, gesture sequences drawn
from the task grammars of paper Figure 3, per-gesture motion primitives
with subject-specific skill variation, and erroneous executions injected
according to the error rubric of paper Table II at the per-gesture error
rates of paper Table VII.

- :mod:`~repro.jigsaws.schema` — dataset constants and scene anchors;
- :mod:`~repro.jigsaws.primitives` — per-gesture kinematic motion
  primitives;
- :mod:`~repro.jigsaws.errors` — rubric-driven error signature injection;
- :mod:`~repro.jigsaws.synthesis` — whole-demonstration synthesis for
  Suturing, Knot-Tying and Needle-Passing;
- :mod:`~repro.jigsaws.dataset` — demonstration containers, LOSO splits
  and windowed tensor extraction.
"""

from .dataset import Demonstration, SurgicalDataset, loso_splits
from .errors import ERROR_RATES, ErrorInjector
from .primitives import GesturePrimitive, PRIMITIVES, SkillProfile
from .schema import SUBJECTS, SuturingAnchors, TRIALS_PER_SUBJECT
from .synthesis import (
    KNOT_TYING_CHAIN,
    NEEDLE_PASSING_CHAIN,
    SurgicalTaskSynthesizer,
    make_suturing_dataset,
    make_task_dataset,
)

__all__ = [
    "Demonstration",
    "ERROR_RATES",
    "ErrorInjector",
    "GesturePrimitive",
    "KNOT_TYING_CHAIN",
    "NEEDLE_PASSING_CHAIN",
    "PRIMITIVES",
    "SUBJECTS",
    "SkillProfile",
    "SurgicalDataset",
    "SurgicalTaskSynthesizer",
    "SuturingAnchors",
    "TRIALS_PER_SUBJECT",
    "loso_splits",
    "make_suturing_dataset",
    "make_task_dataset",
]
