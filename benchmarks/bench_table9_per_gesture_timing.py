"""Benchmark: regenerate paper Table IX (per-gesture timing breakdown).

Per gesture: reaction time and F1 with perfect boundaries, gesture
detection accuracy and jitter, and the same under the full pipeline.
"""

import numpy as np
from conftest import run_once

from repro.experiments import table9
from repro.gestures.vocabulary import Gesture


def test_table9_per_gesture_timing(benchmark, scale):
    rows = run_once(
        benchmark, lambda: table9.run(scale=scale, seed=0, tasks=("suturing",))
    )
    print()
    print(table9.render(rows))

    by_gesture = {r.gesture: r for r in rows}
    # Gestures without rubric errors have no reaction times (paper: G10).
    if Gesture.G10 in by_gesture:
        assert np.isnan(by_gesture[Gesture.G10].pipeline_reaction_ms)
    # Frequent gestures are detected with reasonable frame accuracy.
    accuracies = [
        r.gesture_accuracy_pct
        for r in rows
        if not np.isnan(r.gesture_accuracy_pct)
    ]
    assert accuracies and max(accuracies) > 60.0
    # Perfect boundaries never yield a *worse* F1 than the pipeline on
    # the well-detected gestures (paper Discussion).
    for r in rows:
        if not (np.isnan(r.perfect_f1) or np.isnan(r.pipeline_f1)):
            assert r.perfect_f1 >= r.pipeline_f1 - 0.25
