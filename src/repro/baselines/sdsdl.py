"""SDSDL-style gesture classifier: sparse dictionary + linear SVM.

A simplified reimplementation of the "Shared Discriminative Sparse
Dictionary Learning" comparator of paper Table IV: a shared dictionary is
learned over windowed kinematics; each window's sparse code feeds a
one-vs-rest linear SVM.  (The original learns the dictionary and the SVM
jointly; this version alternates — learn dictionary, then SVM — which
keeps the model family while simplifying the optimisation.)
"""

from __future__ import annotations

import numpy as np

from ..config import as_generator
from ..errors import NotFittedError, ShapeError
from ..nn.preprocessing import StandardScaler
from .dictionary import DictionaryLearner
from .svm import LinearSVM


class SDSDL:
    """Dictionary-learning + linear-SVM gesture classifier.

    Parameters
    ----------
    n_atoms / sparsity / dict_iterations:
        Dictionary-learning hyper-parameters.
    svm_lambda / svm_epochs:
        SVM hyper-parameters.
    max_dict_signals:
        Training signals used for dictionary learning (OMP over the full
        set is expensive; a random subset is standard practice).
    """

    def __init__(
        self,
        n_atoms: int = 48,
        sparsity: int = 4,
        dict_iterations: int = 6,
        svm_lambda: float = 1e-4,
        svm_epochs: int = 4,
        max_dict_signals: int = 3000,
        seed: int = 0,
    ) -> None:
        self.scaler = StandardScaler()
        self.dictionary = DictionaryLearner(
            n_atoms=n_atoms,
            sparsity=sparsity,
            n_iterations=dict_iterations,
            seed=seed,
        )
        self.svm = LinearSVM(reg_lambda=svm_lambda, epochs=svm_epochs, seed=seed + 1)
        self.max_dict_signals = int(max_dict_signals)
        self._rng = as_generator(seed + 2)
        self._fitted = False

    @staticmethod
    def _flatten(x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.ndim == 3:
            return x.reshape(x.shape[0], -1)
        if x.ndim == 2:
            return x
        raise ShapeError(f"windows must be 2-D or 3-D, got shape {x.shape}")

    def fit(self, x: np.ndarray, y: np.ndarray) -> "SDSDL":
        """Train on windows ``x`` with 0-based gesture class labels ``y``."""
        flat = self.scaler.fit_transform(self._flatten(x))
        y = np.asarray(y).astype(int).reshape(-1)
        if flat.shape[0] != y.shape[0]:
            raise ShapeError("x and y must have equal rows")
        subset = flat
        if flat.shape[0] > self.max_dict_signals:
            pick = self._rng.permutation(flat.shape[0])[: self.max_dict_signals]
            subset = flat[pick]
        self.dictionary.fit(subset)
        codes = self.dictionary.encode(flat)
        self.svm.fit(codes, y)
        self._fitted = True
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted 0-based gesture class labels."""
        if not self._fitted:
            raise NotFittedError("SDSDL must be fitted first")
        flat = self.scaler.transform(self._flatten(x))
        codes = self.dictionary.encode(flat)
        return self.svm.predict(codes)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        """Classification accuracy on labelled windows."""
        y = np.asarray(y).astype(int).reshape(-1)
        return float((self.predict(x) == y).mean())
