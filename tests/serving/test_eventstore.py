"""Tests for the durable event store, telemetry plane and analytics.

Covers the observability tentpole's contracts:

- the segmented append-only log: rotation at the size cap, truncated
  tail recovery (a torn write never hides earlier records), refusal of
  foreign schema versions, bounded-ring drop counting;
- exactly-once tee + bit-identical replay under a sharded fleet with
  kill and resize faults injected (the tier-1 miniature of the chaos
  gate);
- the telemetry registry threaded service → sharded router, including
  the resize-proof cumulative counters and monotonic uptime;
- analytics queries and JSON/CSV export over a stored log.
"""

import json
import os
import signal
import struct
import threading

import numpy as np
import pytest

from repro.errors import ConfigurationError, ProtocolError
from repro.serving import (
    EventStoreReader,
    EventStoreWriter,
    MonitorService,
    SessionEvent,
    ShardedMonitorService,
    TelemetryRegistry,
    make_random_walk_trajectory,
    make_synthetic_monitor,
)
from repro.serving.analytics import (
    alert_latency_summary,
    error_rates_by_gesture,
    export_events_csv,
    export_report_json,
    failsafe_summary,
    fleet_report,
)
from repro.serving.eventstore import EVENTSTORE_VERSION, SEGMENT_MAGIC

N_FEATURES = 10


@pytest.fixture(scope="module")
def monitor():
    return make_synthetic_monitor(n_features=N_FEATURES, seed=0)


def make_event(i, sid="proc-0", error=None, flag=False, latency_us=0.0):
    return SessionEvent(
        session_id=sid,
        frame_index=i,
        gesture=i % 3,
        score=0.125 * i,
        flag=flag,
        error=error,
        latency_us=latency_us,
    )


def event_key(event):
    return (
        event.session_id,
        event.frame_index,
        event.gesture,
        event.score,
        event.flag,
        event.error,
    )


class TestSegmentedLog:
    def test_round_trip_preserves_every_field_bit_exactly(self, tmp_path):
        # Scores chosen to be non-representable in decimal: only a
        # bit-exact raw-f64 encoding round-trips them.
        events = [
            SessionEvent(
                session_id=f"s-{i % 2}",
                frame_index=i,
                gesture=-1 if i == 3 else i,
                score=float(np.float64(1.0) / 3.0) * i,
                flag=bool(i % 2),
                error="worker died" if i == 4 else None,
                latency_us=17.25 * i,
            )
            for i in range(5)
        ]
        with EventStoreWriter(tmp_path / "log", fsync="always") as writer:
            assert writer.append_batch(events, shard=3) == 5
        reader = EventStoreReader(tmp_path / "log")
        records = list(reader.iter_records())
        assert [r.shard for r in records] == [3] * 5
        assert [r.seq for r in records] == list(range(5))
        got = list(reader.replay())
        assert got == events  # dataclass equality: every compared field
        assert [e.latency_us for e in got] == [e.latency_us for e in events]
        assert [e.error for e in got] == [e.error for e in events]
        assert reader.session_ids() == ["s-0", "s-1"]
        assert [e.frame_index for e in reader.session_timeline("s-1")] == [1, 3]

    def test_rotation_at_segment_size_cap(self, tmp_path):
        with EventStoreWriter(
            tmp_path / "log", segment_bytes=512, fsync="never"
        ) as writer:
            for i in range(200):
                assert writer.append(make_event(i))
        reader = EventStoreReader(tmp_path / "log")
        segments = reader.segments()
        assert len(segments) > 1, "512-byte cap must rotate"
        assert [p.name for p in segments] == sorted(p.name for p in segments)
        # Rotation must not lose, duplicate or reorder anything.
        assert [e.frame_index for e in reader.replay()] == list(range(200))

    def test_reopen_continues_segment_numbering(self, tmp_path):
        root = tmp_path / "log"
        with EventStoreWriter(root, segment_bytes=512, fsync="never") as w:
            for i in range(100):
                w.append(make_event(i))
        n_before = len(EventStoreReader(root).segments())
        with EventStoreWriter(root, segment_bytes=512, fsync="never") as w:
            for i in range(100, 150):
                w.append(make_event(i))
        reader = EventStoreReader(root)
        # A reopened writer never appends to the old tail segment.
        assert len(reader.segments()) > n_before
        assert [e.frame_index for e in reader.replay()] == list(range(150))

    def test_truncated_tail_recovers_cleanly(self, tmp_path):
        root = tmp_path / "log"
        with EventStoreWriter(root, fsync="always") as writer:
            for i in range(10):
                writer.append(make_event(i))
        (segment,) = EventStoreReader(root).segments()
        # Tear the last record mid-payload — a crash between write()
        # and the next fsync leaves exactly this shape on disk.
        data = segment.read_bytes()
        segment.write_bytes(data[:-7])
        recovered = list(EventStoreReader(root).replay())
        assert [e.frame_index for e in recovered] == list(range(9))
        # A fresh writer then rotates past the torn tail and the log
        # keeps growing without touching the recovered prefix.
        with EventStoreWriter(root, fsync="always") as writer:
            writer.append(make_event(99))
        assert [e.frame_index for e in EventStoreReader(root).replay()] == [
            *range(9),
            99,
        ]

    def test_foreign_version_refused(self, tmp_path):
        root = tmp_path / "log"
        root.mkdir()
        (root / "events-00000000.seg").write_bytes(
            struct.pack("<8sHH", SEGMENT_MAGIC, EVENTSTORE_VERSION + 1, 0)
        )
        with pytest.raises(ProtocolError, match="version"):
            list(EventStoreReader(root).iter_records())

    def test_foreign_magic_refused(self, tmp_path):
        root = tmp_path / "log"
        root.mkdir()
        (root / "events-00000000.seg").write_bytes(b"NOTALOG!" + b"\x00" * 4)
        with pytest.raises(ProtocolError):
            list(EventStoreReader(root).iter_records())

    def test_full_ring_is_a_counted_drop_not_a_stall(self, tmp_path):
        writer = EventStoreWriter(
            tmp_path / "log", ring_capacity=8, fsync="never"
        )
        # Park the flusher so the ring genuinely fills.
        writer._wake.clear()
        with writer._io_lock:
            accepted = sum(writer.append(make_event(i)) for i in range(32))
        assert accepted == 8
        assert writer.dropped_total == 24
        writer.close()
        assert writer.stats()["dropped"] == 24
        assert len(list(EventStoreReader(tmp_path / "log").replay())) == 8

    def test_marker_round_trip(self, tmp_path):
        with EventStoreWriter(tmp_path / "log", fsync="never") as writer:
            writer.append(make_event(0))
            writer.append_marker("resize", {"from": 2, "to": 4})
            writer.append(make_event(1))
        reader = EventStoreReader(tmp_path / "log")
        markers = list(reader.iter_markers())
        assert markers == [{"type": "resize", "from": 2, "to": 4}]
        # Markers interleave in append order but never pollute replay().
        assert [r.kind for r in reader.iter_records()] == [
            "event", "marker", "event",
        ]
        assert [e.frame_index for e in reader.replay()] == [0, 1]

    def test_invalid_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            EventStoreWriter(tmp_path / "log", fsync="sometimes")

    def test_concurrent_writers_interleave_without_loss(self, tmp_path):
        writer = EventStoreWriter(tmp_path / "log", fsync="never")
        n_threads, per_thread = 8, 200

        def blast(k):
            for i in range(per_thread):
                writer.append(make_event(i, sid=f"writer-{k}"), shard=k)

        threads = [
            threading.Thread(target=blast, args=(k,))
            for k in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        writer.close()
        assert writer.stats()["dropped"] == 0
        reader = EventStoreReader(tmp_path / "log")
        records = list(reader.iter_records())
        assert len(records) == n_threads * per_thread
        # seq is the global append order: dense, strictly increasing.
        assert [r.seq for r in records] == list(range(len(records)))
        for k in range(n_threads):
            timeline = reader.session_timeline(f"writer-{k}")
            assert [e.frame_index for e in timeline] == list(range(per_thread))


class TestServiceTee:
    def test_local_service_tees_every_event(self, monitor, tmp_path):
        store = EventStoreWriter(tmp_path / "log", fsync="never")
        service = MonitorService(monitor, max_sessions=4, event_store=store)
        fleet = {
            f"proc-{i}": make_random_walk_trajectory(
                30 + i, n_features=N_FEATURES, seed=40 + i
            )
            for i in range(3)
        }
        for sid, trajectory in fleet.items():
            service.open_session(sid)
            service.feed(sid, trajectory.frames)
        live = service.drain()
        store.close()
        reader = EventStoreReader(tmp_path / "log")
        assert [event_key(e) for e in reader.replay()] == [
            event_key(e) for e in live
        ]
        # Ingest→emission latency rides along on both sides of the tee.
        assert all(e.latency_us > 0 for e in reader.replay())
        snap = service.telemetry.snapshot()
        assert snap["counters"]["events_emitted"] == len(live)
        assert snap["histograms"]["alert_latency_us"]["count"] == len(live)

    def test_sharded_kill_resize_campaign_replays_bit_identical(
        self, monitor, tmp_path
    ):
        """Tier-1 miniature of the chaos gate: a K-shard fleet takes a
        resize and a SIGKILL mid-stream; the on-disk log must replay
        each session's event stream — crash events included — exactly
        as the live drain delivered it."""
        store = EventStoreWriter(tmp_path / "log", fsync="never")
        fleet = {
            f"proc-{i}": make_random_walk_trajectory(
                24, n_features=N_FEATURES, seed=700 + i
            )
            for i in range(8)
        }
        live = []
        with ShardedMonitorService(
            monitor,
            n_shards=3,
            max_sessions_per_shard=8,
            event_store=store,
        ) as service:
            for sid, trajectory in fleet.items():
                service.open_session(sid)
                service.feed(sid, trajectory.frames[:12])
            live += service.drain()
            summary = service.resize(4)
            for sid, trajectory in fleet.items():
                service.feed(sid, trajectory.frames[12:])
            for _ in range(4):
                live += service.tick()
            placement = {sid: service.shard_of(sid) for sid in fleet}
            victim = placement[next(iter(fleet))]
            os.kill(service._shards[victim].process.pid, signal.SIGKILL)
            service._shards[victim].process.join(10.0)
            live += service.drain()
        store.close()
        assert store.stats()["dropped"] == 0

        reader = EventStoreReader(tmp_path / "log")
        logged = {sid: [] for sid in fleet}
        for event in reader.replay():
            logged[event.session_id].append(event)
        by_sid = {sid: [] for sid in fleet}
        for event in live:
            by_sid[event.session_id].append(event)
        for sid in fleet:
            assert [event_key(e) for e in logged[sid]] == [
                event_key(e) for e in by_sid[sid]
            ], f"store diverges from live stream for {sid}"
        # The injected faults are all on the record: a resize marker
        # and at least one terminal crash event.
        markers = list(reader.iter_markers())
        assert [m["type"] for m in markers] == ["resize"]
        assert markers[0]["to"] == summary["to"] == 4
        assert any(e.error is not None for e in reader.replay())


class TestTelemetry:
    def test_histogram_percentiles_and_merge(self):
        registry = TelemetryRegistry()
        hist = registry.histogram("lat")
        for v in [1.0, 2.0, 4.0, 1000.0]:
            hist.observe(v)
        assert hist.count == 4
        assert hist.mean() == pytest.approx(251.75)
        assert hist.percentile(50) <= hist.percentile(99)
        other = TelemetryRegistry()
        other.histogram("lat").observe(8.0)
        other.counter("n").inc(3)
        registry.merge(other.snapshot())
        snap = registry.snapshot()
        assert snap["histograms"]["lat"]["count"] == 5
        assert snap["counters"]["n"] == 3

    def test_negative_counter_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            TelemetryRegistry().counter("n").inc(-1)

    def test_service_stats_uptime_and_events_emitted(self, monitor):
        service = MonitorService(monitor, max_sessions=2)
        sid = service.open_session()
        service.feed(
            sid,
            make_random_walk_trajectory(
                12, n_features=N_FEATURES, seed=1
            ).frames,
        )
        service.drain()
        assert service.stats.events_emitted == 12
        assert service.stats.uptime_s > 0

    def test_sharded_counters_survive_resize(self, monitor):
        """The satellite fix: cumulative fleet counters must not reset
        when shards are retired — stats() folds retired shards into a
        baseline, so frames/events/uptime are monotonic across any
        resize schedule."""
        with ShardedMonitorService(
            monitor, n_shards=3, max_sessions_per_shard=8
        ) as service:
            for i in range(6):
                sid = service.open_session(f"proc-{i}")
                service.feed(
                    sid,
                    make_random_walk_trajectory(
                        20, n_features=N_FEATURES, seed=300 + i
                    ).frames,
                )
            service.drain()
            before = service.stats()
            uptime_before = before.uptime_s
            assert uptime_before > 0
            assert before.events_emitted == 120
            assert before.frames_processed == 120
            service.resize(1)  # retire two shards, migrating sessions
            after = service.stats()
            assert after.events_emitted >= before.events_emitted
            assert after.frames_processed >= before.frames_processed
            assert after.n_ticks >= before.n_ticks
            assert after.uptime_s >= uptime_before
            snap = service.telemetry_snapshot()
            assert snap["counters"]["events_delivered"] == 120
            assert snap["counters"]["resizes"] == 1
            # Per-worker registries folded in survive retirement too.
            assert snap["counters"]["events_emitted"] == 120


class TestAnalytics:
    def _stored(self, tmp_path):
        events = []
        for i in range(20):
            events.append(
                SessionEvent(
                    session_id=f"s-{i % 2}",
                    frame_index=i // 2,
                    gesture=i % 4,
                    score=0.1 * i,
                    flag=(i % 4 == 0),
                    latency_us=10.0 * (i + 1),
                )
            )
        events.append(
            SessionEvent(
                session_id="s-0",
                frame_index=10,
                gesture=0,
                score=0.0,
                flag=True,
                error="worker died",
            )
        )
        with EventStoreWriter(tmp_path / "log", fsync="never") as writer:
            for shard, event in enumerate(events):
                writer.append(event, shard=shard % 2)
        return EventStoreReader(tmp_path / "log")

    def test_error_rates_exclude_terminal_events(self, tmp_path):
        rates = error_rates_by_gesture(self._stored(tmp_path))
        assert set(rates) == {0, 1, 2, 3}
        assert rates[0] == {"events": 5, "flagged": 5, "rate": 1.0}
        assert rates[1]["flagged"] == 0

    def test_latency_and_failsafe_summaries(self, tmp_path):
        reader = self._stored(tmp_path)
        latency = alert_latency_summary(reader)
        assert latency["count"] == 20  # terminal event has no latency
        assert latency["p50_us"] <= latency["p99_us"] <= 200.0
        failsafe = failsafe_summary(reader)
        assert failsafe["events"] == 1
        assert failsafe["by_session"] == {"s-0": "worker died"}

    def test_fleet_report_and_json_export(self, tmp_path):
        reader = self._stored(tmp_path)
        report = fleet_report(reader)
        assert report["events"] == 20  # terminal events are not scored frames
        assert report["sessions"] == 2
        assert set(report["by_shard"]) == {0, 1}
        out = tmp_path / "report.json"
        assert export_report_json(reader, out) == report
        assert json.loads(out.read_text()) == json.loads(
            json.dumps(report)
        )

    def test_csv_export_round_trips_scores(self, tmp_path):
        reader = self._stored(tmp_path)
        out = tmp_path / "events.csv"
        assert export_events_csv(reader, out) == 21
        lines = out.read_text().strip().splitlines()
        assert lines[0].startswith("seq,shard,session_id,frame_index")
        assert len(lines) == 22
        first = lines[1].split(",")
        assert float(first[5]) == 0.0  # score column parses back
