"""Confusion-matrix metrics.

The paper evaluates the erroneous-gesture classifiers with TPR, TNR, PPV
and NPV (Tables V-VI) and the overall pipeline with micro-averaged F1
(Table VIII).  The positive class throughout is "unsafe/erroneous".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError


def _check_binary(y_true: np.ndarray, y_pred: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true).astype(int).reshape(-1)
    y_pred = np.asarray(y_pred).astype(int).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ShapeError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} disagree"
        )
    if y_true.size == 0:
        raise ShapeError("empty label arrays")
    for arr, name in ((y_true, "y_true"), (y_pred, "y_pred")):
        if not np.isin(arr, (0, 1)).all():
            raise ShapeError(f"{name} must be binary (0/1)")
    return y_true, y_pred


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true class i predicted j."""
    y_true = np.asarray(y_true).astype(int).reshape(-1)
    y_pred = np.asarray(y_pred).astype(int).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ShapeError("y_true and y_pred must have equal length")
    if n_classes is None:
        n_classes = int(max(y_true.max(initial=0), y_pred.max(initial=0))) + 1
    matrix = np.zeros((n_classes, n_classes), dtype=int)
    np.add.at(matrix, (y_true, y_pred), 1)
    return matrix


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true).reshape(-1)
    y_pred = np.asarray(y_pred).reshape(-1)
    if y_true.shape != y_pred.shape:
        raise ShapeError("y_true and y_pred must have equal length")
    if y_true.size == 0:
        raise ShapeError("empty label arrays")
    return float((y_true == y_pred).mean())


@dataclass(frozen=True)
class BinaryMetrics:
    """TPR/TNR/PPV/NPV/F1 of a binary classifier (positive = unsafe).

    Undefined ratios (zero denominators) are reported as ``nan``.
    """

    tp: int
    fp: int
    tn: int
    fn: int

    @property
    def tpr(self) -> float:
        """True positive rate (recall / sensitivity)."""
        return self.tp / (self.tp + self.fn) if (self.tp + self.fn) else float("nan")

    @property
    def tnr(self) -> float:
        """True negative rate (specificity)."""
        return self.tn / (self.tn + self.fp) if (self.tn + self.fp) else float("nan")

    @property
    def ppv(self) -> float:
        """Positive predictive value (precision)."""
        return self.tp / (self.tp + self.fp) if (self.tp + self.fp) else float("nan")

    @property
    def npv(self) -> float:
        """Negative predictive value."""
        return self.tn / (self.tn + self.fn) if (self.tn + self.fn) else float("nan")

    @property
    def fpr(self) -> float:
        """False positive rate (1 - TNR)."""
        return 1.0 - self.tnr

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.ppv, self.tpr
        if np.isnan(p) or np.isnan(r) or (p + r) == 0.0:
            return float("nan")
        return 2.0 * p * r / (p + r)

    @property
    def accuracy(self) -> float:
        """Overall fraction correct."""
        total = self.tp + self.fp + self.tn + self.fn
        return (self.tp + self.tn) / total if total else float("nan")


def binary_metrics(y_true: np.ndarray, y_pred: np.ndarray) -> BinaryMetrics:
    """Compute :class:`BinaryMetrics` from binary label arrays."""
    y_true, y_pred = _check_binary(y_true, y_pred)
    tp = int(((y_true == 1) & (y_pred == 1)).sum())
    fp = int(((y_true == 0) & (y_pred == 1)).sum())
    tn = int(((y_true == 0) & (y_pred == 0)).sum())
    fn = int(((y_true == 1) & (y_pred == 0)).sum())
    return BinaryMetrics(tp=tp, fp=fp, tn=tn, fn=fn)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray, average: str = "binary") -> float:
    """F1 score.

    ``average="binary"`` scores the positive class of a binary problem;
    ``"micro"`` pools all classes of a multi-class problem (equivalent to
    accuracy for single-label tasks); ``"macro"`` averages per-class F1s.
    """
    if average == "binary":
        return binary_metrics(y_true, y_pred).f1
    y_true = np.asarray(y_true).astype(int).reshape(-1)
    y_pred = np.asarray(y_pred).astype(int).reshape(-1)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    if average == "micro":
        # Single-label multi-class micro-F1 reduces to accuracy.
        return accuracy(y_true, y_pred)
    if average == "macro":
        scores = []
        for cls in classes:
            scores.append(binary_metrics(y_true == cls, y_pred == cls).f1)
        finite = [s for s in scores if not np.isnan(s)]
        return float(np.mean(finite)) if finite else float("nan")
    raise ShapeError(f"unknown average mode {average!r}")
